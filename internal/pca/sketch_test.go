package pca

import (
	"math"
	"math/rand"
	"testing"

	"dpz/internal/mat"
)

// spectrumData builds an n×m matrix whose covariance spectrum follows the
// prescribed per-feature variances: column j is iid N(0, vals[j]). The
// sample spectrum tracks vals up to Wishart noise, which is all the
// adversarial-spectrum tests need.
func spectrumData(n, m int, vals []float64, seed int64) *mat.Dense {
	rng := rand.New(rand.NewSource(seed))
	x := mat.NewDense(n, m)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for j := 0; j < m; j++ {
			row[j] = math.Sqrt(vals[j]) * rng.NormFloat64()
		}
	}
	return x
}

// modelsEqual compares every bit of two fitted models.
func modelsEqual(a, b *Model) bool {
	if a.TotalVar != b.TotalVar || len(a.Eigenvalues) != len(b.Eigenvalues) {
		return false
	}
	for i, v := range a.Eigenvalues {
		if v != b.Eigenvalues[i] {
			return false
		}
	}
	for i, v := range a.Means {
		if v != b.Means[i] {
			return false
		}
	}
	ad, bd := a.Components.Data(), b.Components.Data()
	if len(ad) != len(bd) {
		return false
	}
	for i, v := range ad {
		if v != bd[i] {
			return false
		}
	}
	return true
}

// adoptedTVE is the cumulative variance fraction the model's adopted
// columns capture.
func adoptedTVE(m *Model) float64 {
	if m.TotalVar <= 0 {
		return 1
	}
	var cum float64
	for _, v := range m.Eigenvalues {
		cum += v
	}
	return cum / m.TotalVar
}

// Seeded sketch fits must be byte-identical across worker counts and
// repeated runs — the compression pipeline's reproducibility contract.
func TestFitTVESketchByteIdenticalAcrossWorkersAndRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	x := lowRankData(600, 300, 24, 1e-6, rng)
	const target = 0.999
	opts := Options{Sketch: true, Workers: 1}
	base, baseDec, err := FitTVESketch(x, target, opts, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 8} {
		for rep := 0; rep < 2; rep++ {
			o := opts
			o.Workers = w
			m, dec, err := FitTVESketch(x, target, o, 7)
			if err != nil {
				t.Fatalf("workers=%d rep=%d: %v", w, rep, err)
			}
			if dec != baseDec {
				t.Fatalf("workers=%d rep=%d: decision %v vs %v", w, rep, dec, baseDec)
			}
			if !modelsEqual(m, base) {
				t.Fatalf("workers=%d rep=%d: model bits differ", w, rep)
			}
		}
	}
}

func TestFitKSketchByteIdenticalAcrossWorkersAndRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	x := lowRankData(600, 300, 24, 1e-6, rng)
	opts := Options{Sketch: true, Workers: 1}
	base, baseDec, err := FitKSketch(x, 24, 0.95, opts, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 8} {
		for rep := 0; rep < 2; rep++ {
			o := opts
			o.Workers = w
			m, dec, err := FitKSketch(x, 24, 0.95, o, 11)
			if err != nil {
				t.Fatalf("workers=%d rep=%d: %v", w, rep, err)
			}
			if dec != baseDec {
				t.Fatalf("workers=%d rep=%d: decision %v vs %v", w, rep, dec, baseDec)
			}
			if !modelsEqual(m, base) {
				t.Fatalf("workers=%d rep=%d: model bits differ", w, rep)
			}
		}
	}
}

// Adversarial spectra: whatever path the ladder takes, the returned model
// must reach the requested TVE — accept via the exact guard, refine via
// the guaranteed covariance path, or fall back to the dense solve whose
// full spectrum trivially reaches any target.
func TestFitTVESketchAdversarialSpectra(t *testing.T) {
	const (
		n = 600
		m = 280
	)
	flat := make([]float64, m)
	dominant := make([]float64, m)
	heavy := make([]float64, m)
	for j := 0; j < m; j++ {
		flat[j] = 1
		dominant[j] = 1e-3
		heavy[j] = math.Pow(float64(j+1), -1.5)
	}
	dominant[0] = 1e6

	cases := []struct {
		name   string
		x      *mat.Dense
		target float64
	}{
		{"flat", spectrumData(n, m, flat, 3), 0.999},
		{"single-dominant", spectrumData(n, m, dominant, 5), 0.999},
		{"rank-deficient", lowRankData(n, m, 10, 0, rand.New(rand.NewSource(9))), 0.99999},
		{"heavy-tailed", spectrumData(n, m, heavy, 13), 0.99},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			model, dec, err := FitTVESketch(tc.x, tc.target, Options{Sketch: true, Workers: 2}, 17)
			if err != nil {
				t.Fatal(err)
			}
			if got := adoptedTVE(model); got < tc.target-1e-9 {
				t.Fatalf("decision %v reached TVE %.9f < target %v", dec, got, tc.target)
			}
			t.Logf("decision=%v k=%d", dec, len(model.Eigenvalues))
		})
	}
	// The flat spectrum specifically must not burn time sketching: the
	// pilot's Ky Fan cut routes it straight to the dense solver.
	model, dec, err := FitTVESketch(spectrumData(n, m, flat, 3), 0.999, Options{Sketch: true, Workers: 2}, 17)
	if err != nil {
		t.Fatal(err)
	}
	if dec != SketchFallback {
		t.Fatalf("flat spectrum must fall back to the dense solve, got %v", dec)
	}
	if len(model.Eigenvalues) != m {
		t.Fatalf("fallback must carry the full spectrum, got %d values", len(model.Eigenvalues))
	}
}

// The no-unverified-accept regression test: every SketchAccept model's
// eigenvalues must be the exact full-data Rayleigh quotients of its
// components — i.e. the guard, not the sketch, produced them — and their
// sum must meet the target. A sketch that slipped an unverified estimate
// into the model would fail the recomputation below.
func TestFitTVESketchAcceptIsExactlyVerified(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	x := lowRankData(600, 300, 20, 1e-6, rng)
	const target = 0.999
	model, dec, err := FitTVESketch(x, target, Options{Sketch: true, Workers: 2}, 23)
	if err != nil {
		t.Fatal(err)
	}
	if dec != SketchAccept {
		t.Fatalf("clean low-rank data must take the accept fast path, got %v", dec)
	}
	r, c := x.Dims()
	k := len(model.Eigenvalues)
	if sum := adoptedTVE(model); sum < target {
		t.Fatalf("accepted basis captures %.9f < target %v", sum, target)
	}
	// Recompute λ_j = ‖C v_j‖²/(r−1) on the full centered data with naive
	// loops, independent of the jammed kernels the guard itself used.
	centered := center(x, model.Means, model.Scales)
	den := float64(r - 1)
	for j := 0; j < k; j++ {
		var q float64
		for i := 0; i < r; i++ {
			var dot float64
			row := centered.Row(i)
			for f := 0; f < c; f++ {
				dot += row[f] * model.Components.At(f, j)
			}
			q += dot * dot
		}
		q /= den
		if math.Abs(q-model.Eigenvalues[j])/model.Eigenvalues[0] > 1e-10 {
			t.Fatalf("eigenvalue %d is not the exact Rayleigh quotient: %v vs %v", j, model.Eigenvalues[j], q)
		}
	}
	// Adopted columns must be orthonormal: they came straight from the
	// sketch's orthonormal basis.
	for i := 0; i < k; i++ {
		for j := i; j < k; j++ {
			var dot float64
			for f := 0; f < c; f++ {
				dot += model.Components.At(f, i) * model.Components.At(f, j)
			}
			want := 0.0
			if i == j {
				want = 1.0
			}
			if math.Abs(dot-want) > 1e-9 {
				t.Fatalf("adopted columns %d,%d not orthonormal: dot %v", i, j, dot)
			}
		}
	}
}

func TestFitTVESketchSmallInputFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	x := lowRankData(200, 100, 8, 1e-6, rng) // c ≤ sketchMinFeatures
	model, dec, err := FitTVESketch(x, 0.99, Options{Sketch: true}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if dec != SketchFallback {
		t.Fatalf("small input must fall back, got %v", dec)
	}
	exact, err := Fit(x, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !modelsEqual(model, exact) {
		t.Fatal("small-input fallback must match the plain cold fit bit-for-bit")
	}
}

func TestFitTVESketchValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	x := lowRankData(40, 20, 4, 1e-6, rng)
	if _, _, err := FitTVESketch(x, 0, Options{Sketch: true}, 1); err == nil {
		t.Fatal("target 0 must error")
	}
	if _, _, err := FitTVESketch(x, 1.5, Options{Sketch: true}, 1); err == nil {
		t.Fatal("target >1 must error")
	}
	if _, _, err := FitTVESketch(mat.NewDense(1, 20), 0.9, Options{Sketch: true}, 1); err == nil {
		t.Fatal("single-sample input must error")
	}
	if _, _, err := FitKSketch(x, 0, 0.9, Options{Sketch: true}, 1); err == nil {
		t.Fatal("k=0 must error")
	}
	if _, _, err := FitKSketch(x, 21, 0.9, Options{Sketch: true}, 1); err == nil {
		t.Fatal("k>m must error")
	}
}

// FitTVE with the Sketch option must agree with the exact path: both
// reach the target, and the sketch's adopted component count sits in the
// narrow window the Ky Fan inequality allows — never below the exact
// minimum, and at most a few verified extras above it.
func FuzzFitTVESketchMatchesExact(f *testing.F) {
	f.Add(int64(1), 0.99)
	f.Add(int64(7), 0.999)
	f.Add(int64(19), 0.9)
	f.Fuzz(func(t *testing.T, seed int64, target float64) {
		if math.IsNaN(target) {
			t.Skip()
		}
		// Clamp into the regime the sketch ladder targets.
		target = 0.5 + math.Mod(math.Abs(target), 0.49999)
		rng := rand.New(rand.NewSource(seed))
		rank := 6 + int(uint64(seed)%24)
		x := lowRankData(560, 280, rank, 1e-5, rng)

		sk, dec, err := FitTVESketch(x, target, Options{Sketch: true, Workers: 2}, seed)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := FitTVE(x, target, Options{}, seed)
		if err != nil {
			t.Fatal(err)
		}
		if got := adoptedTVE(sk); got < target-1e-9 {
			t.Fatalf("sketch (decision %v) reached %.9f < target %v", dec, got, target)
		}
		kExact := exact.KForTVE(target)
		kSketch := sk.KForTVE(target)
		if kSketch < kExact-1 {
			t.Fatalf("sketch claims %d components reach %.6f but the exact minimum is %d — an unverified accept", kSketch, target, kExact)
		}
		if kSketch > kExact+16 {
			t.Fatalf("sketch needed %d components for %.6f, exact needs %d — basis quality collapsed", kSketch, target, kExact)
		}
	})
}
