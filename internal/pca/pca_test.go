package pca

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dpz/internal/mat"
)

// lowRankData builds an n×m matrix with intrinsic rank r plus noise.
func lowRankData(n, m, r int, noise float64, rng *rand.Rand) *mat.Dense {
	basis := mat.NewDense(r, m)
	for i := range basis.Data() {
		basis.Data()[i] = rng.NormFloat64()
	}
	coef := mat.NewDense(n, r)
	for i := range coef.Data() {
		coef.Data()[i] = rng.NormFloat64() * 10
	}
	x := mat.Mul(coef, basis)
	for i := range x.Data() {
		x.Data()[i] += noise*rng.NormFloat64() + 3 // offset to exercise centering
	}
	return x
}

func TestFitRejectsTinyInput(t *testing.T) {
	if _, err := Fit(mat.NewDense(1, 3), Options{}); err == nil {
		t.Fatal("expected error for single sample")
	}
	if _, err := Fit(mat.NewDense(5, 0), Options{}); err == nil {
		t.Fatal("expected error for zero features")
	}
}

func TestTVECurveProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	x := lowRankData(100, 12, 3, 0.01, rng)
	m, err := Fit(x, Options{})
	if err != nil {
		t.Fatal(err)
	}
	curve := m.TVECurve()
	if len(curve) != 12 {
		t.Fatalf("curve length %d", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1]-1e-12 {
			t.Fatal("TVE curve not monotone")
		}
	}
	if math.Abs(curve[len(curve)-1]-1) > 1e-9 {
		t.Fatalf("TVE does not reach 1: %v", curve[len(curve)-1])
	}
	// Rank-3 data: 3 components must explain nearly everything.
	if curve[2] < 0.999 {
		t.Fatalf("rank-3 data: TVE(3) = %v, want ~1", curve[2])
	}
}

func TestKForTVE(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	x := lowRankData(200, 10, 2, 1e-6, rng)
	m, err := Fit(x, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if k := m.KForTVE(0.999); k != 2 {
		t.Fatalf("KForTVE(0.999) = %d, want 2", k)
	}
	if k := m.KForTVE(1.1); k != 10 {
		t.Fatalf("impossible threshold must return M, got %d", k)
	}
	if k := m.KForTVE(0); k != 1 {
		t.Fatalf("KForTVE(0) = %d, want 1", k)
	}
}

func TestReconstructionExactAtFullRank(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	x := lowRankData(50, 8, 8, 0.5, rng)
	m, err := Fit(x, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recon := m.Reconstruct(x, 8)
	if !mat.Equal(x, recon, 1e-8) {
		t.Fatal("full-rank PCA reconstruction is not exact")
	}
}

func TestReconstructionExactForLowRank(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	x := lowRankData(80, 12, 4, 0, rng)
	m, err := Fit(x, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recon := m.Reconstruct(x, 4)
	if !mat.Equal(x, recon, 1e-7) {
		t.Fatal("rank-4 data not recovered from 4 components")
	}
}

func TestReconstructionErrorDecreasesWithK(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	x := lowRankData(120, 15, 15, 1, rng)
	m, err := Fit(x, Options{})
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for k := 1; k <= 15; k += 2 {
		recon := m.Reconstruct(x, k)
		var mse float64
		for i, v := range x.Data() {
			d := v - recon.Data()[i]
			mse += d * d
		}
		if mse > prev+1e-9 {
			t.Fatalf("MSE increased from %v to %v at k=%d", prev, mse, k)
		}
		prev = mse
	}
}

func TestStandardizedFit(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	// Features with wildly different scales.
	x := mat.NewDense(100, 3)
	for i := 0; i < 100; i++ {
		a := rng.NormFloat64()
		x.Set(i, 0, a*1000)
		x.Set(i, 1, a+0.01*rng.NormFloat64())
		x.Set(i, 2, rng.NormFloat64()*0.001)
	}
	m, err := Fit(x, Options{Standardize: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Scales == nil {
		t.Fatal("standardized fit must record scales")
	}
	recon := m.Reconstruct(x, 3)
	if !mat.Equal(x, recon, 1e-6) {
		t.Fatal("standardized full-rank reconstruction not exact")
	}
	// Correlated pair: first component explains ~2/3 of correlation-space
	// variance.
	if tve := m.TVECurve()[0]; tve < 0.6 {
		t.Fatalf("first standardized component TVE = %v", tve)
	}
}

func TestTransformShape(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	x := lowRankData(30, 6, 6, 0.1, rng)
	m, err := Fit(x, Options{})
	if err != nil {
		t.Fatal(err)
	}
	y := m.Transform(x, 2)
	r, c := y.Dims()
	if r != 30 || c != 2 {
		t.Fatalf("score shape %dx%d, want 30x2", r, c)
	}
	// Scores must be centered (mean ~0 per component).
	for j := 0; j < 2; j++ {
		var s float64
		for i := 0; i < 30; i++ {
			s += y.At(i, j)
		}
		if math.Abs(s/30) > 1e-9 {
			t.Fatalf("component %d not centered: mean %v", j, s/30)
		}
	}
}

func TestProjectionMatrixOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	x := lowRankData(60, 9, 9, 1, rng)
	m, err := Fit(x, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := m.ProjectionMatrix(5)
	g := mat.Mul(d.T(), d)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(g.At(i, j)-want) > 1e-9 {
				t.Fatalf("DᵀD[%d,%d] = %v", i, j, g.At(i, j))
			}
		}
	}
}

func TestProjectionMatrixPanicsOnBadK(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	x := lowRankData(20, 4, 4, 1, rng)
	m, _ := Fit(x, Options{})
	for _, k := range []int{0, 5, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for k=%d", k)
				}
			}()
			m.ProjectionMatrix(k)
		}()
	}
}

func TestPCADominantDirection(t *testing.T) {
	// Data stretched along (1,1): first eigenvector must align with it.
	rng := rand.New(rand.NewSource(50))
	x := mat.NewDense(500, 2)
	for i := 0; i < 500; i++ {
		big := rng.NormFloat64() * 10
		small := rng.NormFloat64() * 0.1
		x.Set(i, 0, big+small)
		x.Set(i, 1, big-small)
	}
	m, err := Fit(x, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v0 := []float64{m.Components.At(0, 0), m.Components.At(1, 0)}
	if math.Abs(math.Abs(v0[0])-1/math.Sqrt2) > 0.01 || math.Abs(v0[0]-v0[1]) > 0.02 {
		t.Fatalf("dominant direction = %v, want ±(1,1)/√2", v0)
	}
}

func TestReconstructPropertyFullRankIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(40)
		c := 2 + rng.Intn(6)
		x := mat.NewDense(n, c)
		for i := range x.Data() {
			x.Data()[i] = rng.NormFloat64() * 5
		}
		m, err := Fit(x, Options{})
		if err != nil {
			return false
		}
		return mat.Equal(x, m.Reconstruct(x, c), 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
