package scratch

import "testing"

func TestFloatsSizes(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000, 1 << 20} {
		s := Floats(n)
		if len(s) != n {
			t.Fatalf("Floats(%d) has len %d", n, len(s))
		}
		PutFloats(s)
	}
}

func TestFloatsReuse(t *testing.T) {
	s := Floats(128)
	for i := range s {
		s[i] = 1
	}
	PutFloats(s)
	// A pooled buffer is not zeroed; ZeroedFloats must be.
	z := ZeroedFloats(128)
	for i, v := range z {
		if v != 0 {
			t.Fatalf("ZeroedFloats[%d] = %v", i, v)
		}
	}
	PutFloats(z)
}

func TestPutFloatsIgnoresOddCaps(t *testing.T) {
	// Tiny and non-pool-managed slices must not panic.
	PutFloats(nil)
	PutFloats(make([]float64, 3))
	s := Floats(70)[:10]
	PutFloats(s)
}
