// Package scratch provides pooled scratch buffers for the hot compression
// path. The DCT, quantization and reconstruction kernels need short-lived
// float64 workspaces sized by the block shape; allocating them per block
// (or per call) dominates the allocation profile under -benchmem. Buffers
// are recycled through size-classed sync.Pools, so per-worker scratch is
// effectively arena-allocated across calls.
//
// Buffers are NOT zeroed on reuse: callers must fully overwrite them (the
// kernels here always do) or clear them explicitly.
package scratch

import (
	"math/bits"
	"sync"
)

// minClass is the smallest pooled size class (1<<minClass elements);
// requests below it still round up to it, keeping the class count small.
const minClass = 6 // 64 elements

// maxClass bounds pooling: larger requests are plainly allocated and
// dropped on Put, so a one-off huge field does not pin memory forever.
const maxClass = 26 // 64M elements = 512 MiB of float64

var floatPools [maxClass + 1]sync.Pool

// class returns the pool index for a request of n elements.
func class(n int) int {
	if n <= 1<<minClass {
		return minClass
	}
	return bits.Len(uint(n - 1)) // ceil(log2 n)
}

// Floats returns a []float64 of length n from the pool. Contents are
// arbitrary; the caller must overwrite before reading. Return it with
// PutFloats when done.
func Floats(n int) []float64 {
	if n < 0 {
		panic("scratch: negative length")
	}
	c := class(n)
	if c > maxClass {
		return make([]float64, n)
	}
	if v := floatPools[c].Get(); v != nil {
		return v.([]float64)[:n]
	}
	return make([]float64, n, 1<<c)
}

// PutFloats returns a slice obtained from Floats to the pool. Passing a
// slice not obtained from Floats is allowed as long as its capacity is at
// least the size class it will serve.
func PutFloats(s []float64) {
	c := cap(s)
	if c < 1<<minClass || c > 1<<maxClass {
		return
	}
	// Only pool under the class the capacity fully serves: a slice of
	// capacity c serves class floor(log2 c).
	cl := bits.Len(uint(c)) - 1
	if cl < minClass {
		return
	}
	if cl > maxClass {
		cl = maxClass
	}
	floatPools[cl].Put(s[:0:c])
}

var bytePools [maxClass + 1]sync.Pool

// Bytes returns a []byte of length n from the pool, mirroring Floats for
// the inflate scratch on the decode path. Contents are arbitrary; the
// caller must overwrite before reading. Return it with PutBytes when done.
func Bytes(n int) []byte {
	if n < 0 {
		panic("scratch: negative length")
	}
	c := class(n)
	if c > maxClass {
		return make([]byte, n)
	}
	if v := bytePools[c].Get(); v != nil {
		return v.([]byte)[:n]
	}
	return make([]byte, n, 1<<c)
}

// PutBytes returns a slice obtained from Bytes to the pool. Like
// PutFloats, any slice whose capacity fully serves a size class is
// accepted. Callers must guarantee nothing else aliases the slice.
func PutBytes(s []byte) {
	c := cap(s)
	if c < 1<<minClass || c > 1<<maxClass {
		return
	}
	cl := bits.Len(uint(c)) - 1
	if cl < minClass {
		return
	}
	if cl > maxClass {
		cl = maxClass
	}
	bytePools[cl].Put(s[:0:c])
}

// ZeroedFloats returns a pooled slice of n zeros.
func ZeroedFloats(n int) []float64 {
	//dpzlint:ignore scratchpair ownership transfers to the caller, who releases via PutFloats
	s := Floats(n)
	for i := range s {
		s[i] = 0
	}
	return s
}
