package fault

import (
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
)

// Transport wraps an http.RoundTripper with scheduled connection errors,
// truncated response bodies and latency stalls. Each request forks its
// own stream ("rt-<n>" by arrival order), so the n-th request always
// suffers the same fate for a given seed — the schedule is a function of
// the seed even when requests race.
type Transport struct {
	base http.RoundTripper
	inj  *Injector
	seq  atomic.Uint64
}

// Transport wraps base (nil means http.DefaultTransport) with this
// injector's plan.
func (in *Injector) Transport(base http.RoundTripper) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{base: base, inj: in}
}

// RoundTrip applies the schedule: a stall, then possibly a transport
// error (the request may or may not have reached the server — exactly
// the ambiguity retrying clients must handle), then possibly a response
// body that dies mid-stream with io.ErrUnexpectedEOF.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	s := t.inj.Stream(fmt.Sprintf("rt-%d", t.seq.Add(1)))
	s.mu.Lock()
	op := s.begin()
	s.maybeStall(op)
	if s.roll(s.plan.ConnErr) {
		// Half the drops happen before the request is sent, half after the
		// server processed it but before the response arrived — exactly the
		// ambiguity ("did it go through?") retrying clients must handle.
		afterSend := s.intn(2) == 1
		var err error
		if afterSend {
			err = s.inject(op, "connection dropped after send")
		} else {
			err = s.inject(op, "connection error before send")
		}
		s.mu.Unlock()
		if afterSend {
			if resp, rerr := t.base.RoundTrip(req); rerr == nil {
				_, _ = io.Copy(io.Discard, resp.Body)
				_ = resp.Body.Close()
			}
		}
		return nil, err
	}
	trunc := s.roll(s.plan.TruncBody)
	s.mu.Unlock()

	resp, err := t.base.RoundTrip(req)
	if err != nil || !trunc {
		return resp, err
	}
	s.mu.Lock()
	n := s.intn(64)
	s.inject(op, fmt.Sprintf("response body truncated after %d bytes", n))
	s.mu.Unlock()
	resp.Body = &truncBody{inner: resp.Body, remaining: n}
	return resp, nil
}

// truncBody yields remaining bytes of the real body, then fails with
// io.ErrUnexpectedEOF — a connection reset mid-download.
type truncBody struct {
	inner     io.ReadCloser
	remaining int
}

func (b *truncBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if len(p) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.inner.Read(p)
	b.remaining -= n
	if err == io.EOF {
		return n, err
	}
	if b.remaining <= 0 && err == nil {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *truncBody) Close() error { return b.inner.Close() }
