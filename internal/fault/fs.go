package fault

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// File is the slice of *os.File that durable writes need. ReadAt serves
// recovery scans over the same handle abstraction.
type File interface {
	io.Writer
	io.ReaderAt
	// Sync flushes written data to stable storage: the durability point.
	Sync() error
	// Truncate cuts the file to size bytes (rollback of a torn append).
	Truncate(size int64) error
	Close() error
}

// FS is the filesystem surface of crash-safe writes: enough to create,
// append, fsync, atomically rename and remove files, and to fsync the
// containing directory so renames and creates survive a crash.
type FS interface {
	// Create opens path for writing, truncating any existing file.
	Create(path string) (File, error)
	// CreateExcl opens path for writing, failing if it already exists.
	CreateExcl(path string) (File, error)
	// Open opens path read-only.
	Open(path string) (File, error)
	// Remove deletes path.
	Remove(path string) error
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// SyncDir fsyncs the directory containing path, making preceding
	// creates/renames/removes in it durable.
	SyncDir(path string) error
	// Size returns the current length of path in bytes.
	Size(path string) (int64, error)
}

// OS is the real filesystem.
type OS struct{}

type osFile struct{ f *os.File }

func (o osFile) Write(p []byte) (int, error)             { return o.f.Write(p) }
func (o osFile) ReadAt(p []byte, off int64) (int, error) { return o.f.ReadAt(p, off) }
func (o osFile) Sync() error                             { return o.f.Sync() }
func (o osFile) Truncate(size int64) error               { return o.f.Truncate(size) }
func (o osFile) Close() error                            { return o.f.Close() }

// Create implements FS.
func (OS) Create(path string) (File, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// CreateExcl implements FS.
func (OS) CreateExcl(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// Open implements FS.
func (OS) Open(path string) (File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// Remove implements FS.
func (OS) Remove(path string) error { return os.Remove(path) }

// Rename implements FS.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// SyncDir implements FS: fsync on the parent directory of path.
func (OS) SyncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	syncErr := d.Sync()
	if closeErr := d.Close(); syncErr == nil {
		syncErr = closeErr
	}
	return syncErr
}

// Size implements FS.
func (OS) Size(path string) (int64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// ErrKilled is returned by a MemFS whose write budget ran out: the
// simulated process was killed at that byte. All subsequent operations
// fail with it too.
var ErrKilled = errors.New("fault: killed at write limit")

// MemFS is an in-memory FS with crash semantics for durability tests:
//
//   - Written bytes are volatile until File.Sync; a crash discards
//     unsynced content (or, in keep-unsynced mode, keeps it — the two
//     bracket what a real page cache may do).
//   - Namespace changes (create, rename, remove) are volatile until
//     SyncDir; a crash reverts the namespace to its last synced state,
//     like a directory whose entries never hit the journal.
//   - An optional write budget kills the filesystem after exactly N
//     payload bytes have been written, mid-call, leaving the prefix —
//     the kill-at-every-offset harness iterates N over a whole write
//     sequence.
//
// The zero value is not usable; call NewMemFS.
type MemFS struct {
	mu     sync.Mutex
	files  map[string]*memFile
	synced map[string]*memFile // namespace as of the last SyncDir
	limit  int64               // remaining write budget; <0 = unlimited
	killed bool
}

type memFile struct {
	data    []byte // volatile content
	durable []byte // content as of the last Sync
}

// NewMemFS returns an empty in-memory filesystem with no write limit.
func NewMemFS() *MemFS {
	return &MemFS{
		files:  make(map[string]*memFile),
		synced: make(map[string]*memFile),
		limit:  -1,
	}
}

// SetWriteLimit arms the kill switch: after n more payload bytes are
// written (across all files), the write in progress keeps its prefix and
// every operation from then on fails with ErrKilled. n < 0 disarms.
func (m *MemFS) SetWriteLimit(n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.limit = n
	m.killed = false
}

// Killed reports whether the write budget ran out.
func (m *MemFS) Killed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.killed
}

// Crash simulates a power cut: every file's content reverts to its last
// synced bytes (keepUnsynced keeps volatile bytes instead — the lucky
// page cache), the namespace reverts to the last SyncDir, and the kill
// switch resets so recovery code can run against the survivor state.
func (m *MemFS) Crash(keepUnsynced bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	next := make(map[string]*memFile, len(m.synced))
	for name, f := range m.synced {
		if keepUnsynced {
			next[name] = &memFile{data: append([]byte(nil), f.data...), durable: append([]byte(nil), f.data...)}
		} else {
			next[name] = &memFile{data: append([]byte(nil), f.durable...), durable: append([]byte(nil), f.durable...)}
		}
	}
	m.files = next
	m.synced = make(map[string]*memFile, len(next))
	for name, f := range next {
		m.synced[name] = f
	}
	m.killed = false
	m.limit = -1
}

// Names lists the current (volatile) namespace, sorted.
func (m *MemFS) Names() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.files))
	for name := range m.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ReadFile returns a copy of path's current content.
func (m *MemFS) ReadFile(path string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[path]
	if !ok {
		return nil, fmt.Errorf("memfs: %s: %w", path, os.ErrNotExist)
	}
	return append([]byte(nil), f.data...), nil
}

func (m *MemFS) checkKilled() error {
	if m.killed {
		return ErrKilled
	}
	return nil
}

// Create implements FS.
func (m *MemFS) Create(path string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkKilled(); err != nil {
		return nil, err
	}
	f := &memFile{}
	m.files[path] = f
	return &memHandle{fs: m, f: f}, nil
}

// CreateExcl implements FS.
func (m *MemFS) CreateExcl(path string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkKilled(); err != nil {
		return nil, err
	}
	if _, ok := m.files[path]; ok {
		return nil, fmt.Errorf("memfs: %s: %w", path, os.ErrExist)
	}
	f := &memFile{}
	m.files[path] = f
	return &memHandle{fs: m, f: f}, nil
}

// Open implements FS.
func (m *MemFS) Open(path string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkKilled(); err != nil {
		return nil, err
	}
	f, ok := m.files[path]
	if !ok {
		return nil, fmt.Errorf("memfs: %s: %w", path, os.ErrNotExist)
	}
	return &memHandle{fs: m, f: f, readonly: true}, nil
}

// Remove implements FS.
func (m *MemFS) Remove(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkKilled(); err != nil {
		return err
	}
	if _, ok := m.files[path]; !ok {
		return fmt.Errorf("memfs: %s: %w", path, os.ErrNotExist)
	}
	delete(m.files, path)
	return nil
}

// Rename implements FS: atomic in the volatile namespace, durable only
// after SyncDir.
func (m *MemFS) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkKilled(); err != nil {
		return err
	}
	f, ok := m.files[oldpath]
	if !ok {
		return fmt.Errorf("memfs: %s: %w", oldpath, os.ErrNotExist)
	}
	delete(m.files, oldpath)
	m.files[newpath] = f
	return nil
}

// SyncDir implements FS: checkpoints the whole namespace (MemFS models a
// single directory).
func (m *MemFS) SyncDir(string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkKilled(); err != nil {
		return err
	}
	m.synced = make(map[string]*memFile, len(m.files))
	for name, f := range m.files {
		m.synced[name] = f
	}
	return nil
}

// Size implements FS.
func (m *MemFS) Size(path string) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[path]
	if !ok {
		return 0, fmt.Errorf("memfs: %s: %w", path, os.ErrNotExist)
	}
	return int64(len(f.data)), nil
}

// memHandle is an open MemFS file.
type memHandle struct {
	fs       *MemFS
	f        *memFile
	readonly bool
	closed   bool
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.fs.checkKilled(); err != nil {
		return 0, err
	}
	if h.closed || h.readonly {
		return 0, errors.New("memfs: write to closed or read-only file")
	}
	n := len(p)
	if h.fs.limit >= 0 && int64(n) > h.fs.limit {
		// The kill point lands inside this write: the prefix sticks, the
		// process is gone.
		n = int(h.fs.limit)
		h.f.data = append(h.f.data, p[:n]...)
		h.fs.limit = 0
		h.fs.killed = true
		return n, ErrKilled
	}
	if h.fs.limit >= 0 {
		h.fs.limit -= int64(n)
	}
	h.f.data = append(h.f.data, p...)
	return n, nil
}

func (h *memHandle) ReadAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.fs.checkKilled(); err != nil {
		return 0, err
	}
	if off < 0 || off > int64(len(h.f.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.fs.checkKilled(); err != nil {
		return err
	}
	h.f.durable = append(h.f.durable[:0], h.f.data...)
	return nil
}

func (h *memHandle) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.fs.checkKilled(); err != nil {
		return err
	}
	if size < 0 || size > int64(len(h.f.data)) {
		return fmt.Errorf("memfs: truncate to %d outside [0,%d]", size, len(h.f.data))
	}
	h.f.data = h.f.data[:size]
	if int64(len(h.f.durable)) > size {
		h.f.durable = h.f.durable[:size]
	}
	return nil
}

func (h *memHandle) Close() error {
	h.closed = true
	return nil
}

// WrapFS injects this stream's write/sync/rename faults into any FS.
// Each file opened through the wrapper shares the stream, so one
// schedule covers the whole write sequence in operation order.
func (s *Stream) WrapFS(inner FS) FS { return &faultFS{inner: inner, s: s} }

type faultFS struct {
	inner FS
	s     *Stream
}

func (f *faultFS) wrapFile(file File, err error) (File, error) {
	if err != nil {
		return nil, err
	}
	return &faultFile{inner: file, s: f.s}, nil
}

func (f *faultFS) Create(path string) (File, error) { return f.wrapFile(f.inner.Create(path)) }
func (f *faultFS) CreateExcl(path string) (File, error) {
	return f.wrapFile(f.inner.CreateExcl(path))
}
func (f *faultFS) Open(path string) (File, error) { return f.wrapFile(f.inner.Open(path)) }
func (f *faultFS) Remove(path string) error       { return f.inner.Remove(path) }

func (f *faultFS) Rename(oldpath, newpath string) error {
	f.s.mu.Lock()
	op := f.s.begin()
	if f.s.roll(f.s.plan.RenameErr) {
		err := f.s.inject(op, "rename error")
		f.s.mu.Unlock()
		return err
	}
	f.s.mu.Unlock()
	return f.inner.Rename(oldpath, newpath)
}

func (f *faultFS) SyncDir(path string) error {
	f.s.mu.Lock()
	op := f.s.begin()
	if f.s.roll(f.s.plan.SyncErr) {
		err := f.s.inject(op, "dir sync error")
		f.s.mu.Unlock()
		return err
	}
	f.s.mu.Unlock()
	return f.inner.SyncDir(path)
}

func (f *faultFS) Size(path string) (int64, error) { return f.inner.Size(path) }

// faultFile injects write-path faults; reads pass through untouched so
// recovery scans observe exactly what "survived".
type faultFile struct {
	inner File
	s     *Stream
}

func (f *faultFile) Write(p []byte) (int, error) {
	w := f.s.Writer(f.inner)
	return w.Write(p)
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) { return f.inner.ReadAt(p, off) }

func (f *faultFile) Sync() error {
	f.s.mu.Lock()
	op := f.s.begin()
	f.s.maybeStall(op)
	if f.s.roll(f.s.plan.SyncErr) {
		err := f.s.inject(op, "sync error")
		f.s.mu.Unlock()
		return err
	}
	f.s.mu.Unlock()
	return f.inner.Sync()
}

func (f *faultFile) Truncate(size int64) error { return f.inner.Truncate(size) }
func (f *faultFile) Close() error              { return f.inner.Close() }
