package fault

import (
	"fmt"
	"io"

	"dpz/internal/integrity"
)

// Reader wraps an io.Reader with scheduled short reads, read errors and
// stalls. Every Read consumes a fixed number of draws, so the schedule
// replays byte-identically for a fixed call sequence.
type Reader struct {
	r io.Reader
	s *Stream
}

// Reader wraps r with this stream's schedule.
func (s *Stream) Reader(r io.Reader) *Reader { return &Reader{r: r, s: s} }

// Read applies the schedule: a stall, then possibly an injected error,
// then possibly a shortened buffer handed to the underlying reader.
func (f *Reader) Read(p []byte) (int, error) {
	f.s.mu.Lock()
	op := f.s.begin()
	f.s.maybeStall(op)
	if f.s.roll(f.s.plan.ReadErr) {
		err := f.s.inject(op, "read error")
		f.s.mu.Unlock()
		return 0, err
	}
	if f.s.roll(f.s.plan.ShortRead) && len(p) > 1 {
		n := 1 + f.s.intn(len(p)-1)
		f.s.inject(op, fmt.Sprintf("short read (%d of %d bytes)", n, len(p)))
		p = p[:n]
	}
	f.s.mu.Unlock()
	return f.r.Read(p)
}

// Writer wraps an io.Writer with scheduled torn writes, write errors,
// silent single-bit corruption and stalls.
type Writer struct {
	w io.Writer
	s *Stream
}

// Writer wraps w with this stream's schedule.
func (s *Stream) Writer(w io.Writer) *Writer { return &Writer{w: w, s: s} }

// Write applies the schedule. A torn write pushes a deterministic prefix
// into the underlying writer and then fails — the bytes that landed are
// really there, as after a crash mid-write. Silent corruption reuses the
// integrity.Fault bit-flip primitive on a copy of the buffer.
func (f *Writer) Write(p []byte) (int, error) {
	f.s.mu.Lock()
	op := f.s.begin()
	f.s.maybeStall(op)
	if f.s.roll(f.s.plan.WriteErr) {
		err := f.s.inject(op, "write error")
		f.s.mu.Unlock()
		return 0, err
	}
	if f.s.roll(f.s.plan.TornWrite) && len(p) > 0 {
		n := f.s.intn(len(p))
		err := f.s.inject(op, fmt.Sprintf("torn write (%d of %d bytes)", n, len(p)))
		f.s.mu.Unlock()
		m, werr := f.w.Write(p[:n])
		if werr != nil {
			return m, werr
		}
		return m, err
	}
	if f.s.roll(f.s.plan.CorruptWrite) && len(p) > 0 {
		bit := integrity.Fault{Kind: integrity.FaultBitFlip, Offset: f.s.intn(len(p)), Mask: 1 << f.s.intn(8)}
		f.s.inject(op, fmt.Sprintf("silent corruption: %s", bit))
		f.s.mu.Unlock()
		return f.w.Write(bit.Apply(p))
	}
	f.s.mu.Unlock()
	return f.w.Write(p)
}
