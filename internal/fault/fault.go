// Package fault is dpz's deterministic, seed-driven fault-injection
// framework: the machinery the resilience tests (torn-write recovery,
// client retry/hedging, the chaos soak) stand on. It generalizes the
// bit-flip harness in dpz/internal/integrity from "corrupt a finished
// buffer" to "corrupt a live I/O path on a reproducible schedule":
//
//   - Stream wraps a seeded splitmix64 PRNG; every injection decision is
//     one sequential draw, so the same (seed, label, op-index) always
//     yields the same fault. Concurrency cannot perturb a stream's
//     schedule because each wrapped reader/writer/file/request gets its
//     own stream forked from a stable label.
//   - Reader / Writer wrap io.Reader / io.Writer with short reads, read
//     errors, torn writes (a prefix lands, then an error), outright
//     write errors, silent single-byte corruption (integrity.Fault bit
//     flips) and latency stalls.
//   - FS / File abstract the handful of filesystem calls durable archive
//     writes need (create, write, sync, rename, truncate, directory
//     sync). OS is the real implementation, MemFS an in-memory one with
//     crash semantics (unsynced data is lost), and WrapFS injects faults
//     into any implementation.
//   - Transport wraps an http.RoundTripper with connection errors,
//     mid-body resets and latency stalls.
//
// Injected failures all wrap Err, so tests and retry loops can
// errors.Is-classify "this was the harness" against real bugs.
package fault

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Err is the sentinel all injected failures wrap.
var Err = errors.New("fault: injected")

// Error is one injected failure, labeled with the stream and operation
// index that produced it so a test failure names its exact cause.
type Error struct {
	Stream string // stream label
	Op     int    // 0-based operation index within the stream
	What   string // human description, e.g. "torn write (3 of 17 bytes)"
}

func (e *Error) Error() string {
	return fmt.Sprintf("fault: injected %s (stream %q op %d)", e.What, e.Stream, e.Op)
}

// Unwrap ties every injected failure to the Err sentinel.
func (e *Error) Unwrap() error { return Err }

// Plan configures what an Injector may do and how often. Probabilities
// are in [0,1] per operation; zero (the zero value) injects nothing, so
// a zero Plan is a transparent pass-through. The same Plan and Seed
// always produce the same schedule.
type Plan struct {
	// Seed selects the schedule. Streams forked under different labels
	// draw from independent PRNGs derived from Seed and the label.
	Seed uint64

	// ShortRead truncates a Read's buffer to a deterministic shorter
	// length (legal io.Reader behaviour callers must tolerate).
	ShortRead float64
	// ReadErr fails a Read outright.
	ReadErr float64

	// TornWrite writes only a deterministic prefix of the buffer, then
	// fails — the torn-write crash model for durability tests.
	TornWrite float64
	// WriteErr fails a Write before any byte lands.
	WriteErr float64
	// CorruptWrite flips one bit of one written byte without reporting
	// an error — silent corruption that only checksums can catch.
	CorruptWrite float64

	// SyncErr fails a File.Sync.
	SyncErr float64
	// RenameErr fails an FS.Rename.
	RenameErr float64

	// Stall sleeps StallDur before an operation proceeds (latency
	// injection). The sleep itself uses SleepFn.
	Stall    float64
	StallDur time.Duration

	// ConnErr fails an HTTP round trip with a transport error.
	ConnErr float64
	// TruncBody cuts an HTTP response body short: a deterministic prefix
	// is readable, then io.ErrUnexpectedEOF (a dropped connection).
	TruncBody float64

	// SleepFn replaces time.Sleep for stall injection; nil means
	// time.Sleep. Tests inject a recorder to keep soaks fast.
	SleepFn func(time.Duration)
}

// Injector derives independent fault streams from one Plan. It is
// immutable and safe for concurrent use.
type Injector struct {
	plan Plan
}

// New returns an Injector for plan.
func New(plan Plan) *Injector { return &Injector{plan: plan} }

// Plan returns the injector's configuration.
func (in *Injector) Plan() Plan { return in.plan }

// Stream forks an independent deterministic fault stream. The stream's
// schedule depends only on (Plan.Seed, label) and the order of its own
// operations — never on other streams or goroutine interleaving.
func (in *Injector) Stream(label string) *Stream {
	return &Stream{
		plan:  in.plan,
		label: label,
		state: splitmix64Seed(in.plan.Seed ^ fnv64(label)),
	}
}

// Stream is one deterministic sequence of injection decisions. Methods
// are safe for concurrent use, though decisions are handed out in call
// order (wrap one stream per goroutine for full determinism).
type Stream struct {
	plan  Plan
	label string

	mu     sync.Mutex
	state  uint64
	ops    int
	events []string // bounded trace of injected faults
}

// maxEvents bounds the per-stream trace.
const maxEvents = 256

// Label returns the stream's fork label.
func (s *Stream) Label() string { return s.label }

// Ops returns how many injection decisions the stream has made.
func (s *Stream) Ops() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ops
}

// Events returns the injected-fault trace (most recent maxEvents).
func (s *Stream) Events() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.events...)
}

// next draws the next PRNG value. Callers hold s.mu.
func (s *Stream) next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// roll consumes one draw and reports whether an event with probability p
// fires. A disabled fault kind (p <= 0) still consumes its draw, so the
// schedule of the remaining kinds is stable when one kind is switched
// off — a failing seed can be re-run with a single fault class isolated.
func (s *Stream) roll(p float64) bool {
	v := s.next()
	if p <= 0 {
		return false
	}
	return float64(v>>11)/(1<<53) < p
}

// intn returns a deterministic value in [0, n). n must be > 0.
func (s *Stream) intn(n int) int {
	return int(s.next() % uint64(n))
}

// begin opens one operation: bumps the op counter and returns its index.
func (s *Stream) begin() int {
	s.ops++
	return s.ops - 1
}

// inject records and builds the injected error for op.
func (s *Stream) inject(op int, what string) *Error {
	if len(s.events) < maxEvents {
		s.events = append(s.events, fmt.Sprintf("op %d: %s", op, what))
	}
	return &Error{Stream: s.label, Op: op, What: what}
}

// maybeStall sleeps StallDur with probability Stall. Callers hold s.mu;
// the sleep itself runs unlocked.
func (s *Stream) maybeStall(op int) {
	if !s.roll(s.plan.Stall) || s.plan.StallDur <= 0 {
		return
	}
	s.inject(op, fmt.Sprintf("stall %v", s.plan.StallDur))
	sleep := s.plan.SleepFn
	if sleep == nil {
		sleep = time.Sleep
	}
	d := s.plan.StallDur
	s.mu.Unlock()
	sleep(d)
	s.mu.Lock()
}

// splitmix64Seed whitens a raw seed so adjacent seeds (1, 2, 3...) give
// uncorrelated streams.
func splitmix64Seed(seed uint64) uint64 {
	z := seed + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// fnv64 hashes a label (FNV-1a) for stream derivation.
func fnv64(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}
