package fault

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

// chunkedCopy pushes src through w in fixed-size chunks, collecting the
// error sequence — the replay fingerprint of a write schedule.
func chunkedCopy(w io.Writer, src []byte, chunk int) []string {
	var errs []string
	for off := 0; off < len(src); off += chunk {
		end := min(off+chunk, len(src))
		if _, err := w.Write(src[off:end]); err != nil {
			errs = append(errs, err.Error())
		}
	}
	return errs
}

// TestWriterReplay is the determinism contract: the same seed and call
// sequence produce byte-identical downstream bytes and identical error
// sequences, and a different seed produces a different schedule.
func TestWriterReplay(t *testing.T) {
	src := make([]byte, 4096)
	for i := range src {
		src[i] = byte(i * 7)
	}
	plan := Plan{Seed: 42, TornWrite: 0.2, WriteErr: 0.1, CorruptWrite: 0.2}
	run := func(seed uint64) ([]byte, []string) {
		p := plan
		p.Seed = seed
		var buf bytes.Buffer
		s := New(p).Stream("file-a")
		errs := chunkedCopy(s.Writer(&buf), src, 97)
		return buf.Bytes(), errs
	}
	b1, e1 := run(42)
	b2, e2 := run(42)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("same seed produced different downstream bytes: %d vs %d", len(b1), len(b2))
	}
	if !reflect.DeepEqual(e1, e2) {
		t.Fatalf("same seed produced different error sequences:\n%v\n%v", e1, e2)
	}
	if len(e1) == 0 {
		t.Fatalf("plan injected no faults over %d writes", (len(src)+96)/97)
	}
	b3, _ := run(43)
	if bytes.Equal(b1, b3) {
		t.Errorf("different seeds produced identical corruption")
	}
}

// TestStreamIndependence: streams forked under different labels have
// independent schedules; the same label replays identically.
func TestStreamIndependence(t *testing.T) {
	in := New(Plan{Seed: 7, WriteErr: 0.5})
	draw := func(label string) []bool {
		s := in.Stream(label)
		out := make([]bool, 64)
		s.mu.Lock()
		for i := range out {
			s.begin()
			out[i] = s.roll(s.plan.WriteErr)
		}
		s.mu.Unlock()
		return out
	}
	if !reflect.DeepEqual(draw("a"), draw("a")) {
		t.Errorf("same label replayed differently")
	}
	if reflect.DeepEqual(draw("a"), draw("b")) {
		t.Errorf("labels a and b drew identical schedules")
	}
}

// TestReaderFaults: short reads stay legal (n <= len(p), no error) and
// injected read errors wrap the sentinel.
func TestReaderFaults(t *testing.T) {
	src := bytes.Repeat([]byte("x"), 1<<14)
	r := New(Plan{Seed: 3, ShortRead: 0.5, ReadErr: 0.1}).Stream("r").Reader(bytes.NewReader(src))
	var got []byte
	buf := make([]byte, 113)
	var injected int
	for {
		n, err := r.Read(buf)
		if n > len(buf) {
			t.Fatalf("read returned %d > len %d", n, len(buf))
		}
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			if !errors.Is(err, Err) {
				t.Fatalf("unexpected real error: %v", err)
			}
			injected++
			if injected > 10000 {
				t.Fatal("reader never makes progress")
			}
		}
	}
	if !bytes.Equal(got, src) {
		t.Errorf("short reads corrupted data: got %d bytes, want %d", len(got), len(src))
	}
}

// TestZeroPlanTransparent: the zero plan passes everything through.
func TestZeroPlanTransparent(t *testing.T) {
	var buf bytes.Buffer
	s := New(Plan{}).Stream("z")
	if errs := chunkedCopy(s.Writer(&buf), []byte("hello world"), 3); errs != nil {
		t.Fatalf("zero plan injected: %v", errs)
	}
	if buf.String() != "hello world" {
		t.Fatalf("zero plan corrupted: %q", buf.String())
	}
	r := s.Reader(strings.NewReader("abc"))
	out, err := io.ReadAll(r)
	if err != nil || string(out) != "abc" {
		t.Fatalf("zero plan read: %q, %v", out, err)
	}
}

// TestMemFSCrash: unsynced bytes are lost, synced bytes survive, and the
// namespace reverts to the last SyncDir.
func TestMemFSCrash(t *testing.T) {
	fs := NewMemFS()
	f, err := fs.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("+volatile")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("b"); err != nil { // never dir-synced
		t.Fatal(err)
	}

	fs.Crash(false)
	if got := fs.Names(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("post-crash namespace %v, want [a]", got)
	}
	data, err := fs.ReadFile("a")
	if err != nil || string(data) != "durable" {
		t.Fatalf("post-crash content %q (%v), want %q", data, err, "durable")
	}
}

// TestMemFSWriteLimit: the kill switch fires mid-write, keeps the exact
// prefix, and poisons all later operations.
func TestMemFSWriteLimit(t *testing.T) {
	fs := NewMemFS()
	f, err := fs.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir("a"); err != nil { // make the name itself durable
		t.Fatal(err)
	}
	fs.SetWriteLimit(5)
	n, err := f.Write([]byte("0123456789"))
	if n != 5 || !errors.Is(err, ErrKilled) {
		t.Fatalf("write past limit: n=%d err=%v, want 5, ErrKilled", n, err)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrKilled) {
		t.Fatalf("post-kill write err %v, want ErrKilled", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrKilled) {
		t.Fatalf("post-kill sync err %v, want ErrKilled", err)
	}
	fs.Crash(true) // keep unsynced: the 5-byte prefix
	data, err := fs.ReadFile("a")
	if err != nil || string(data) != "01234" {
		t.Fatalf("post-crash content %q (%v), want %q", data, err, "01234")
	}
}

// TestTransportSchedule: the fault transport injects deterministically
// by request index and truncated bodies surface io.ErrUnexpectedEOF.
func TestTransportSchedule(t *testing.T) {
	payload := bytes.Repeat([]byte("p"), 512)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write(payload)
	}))
	defer ts.Close()

	run := func(seed uint64) []string {
		tr := New(Plan{Seed: seed, ConnErr: 0.3, TruncBody: 0.4}).Transport(nil)
		cl := &http.Client{Transport: tr}
		var outcomes []string
		for i := 0; i < 32; i++ {
			resp, err := cl.Get(ts.URL)
			if err != nil {
				outcomes = append(outcomes, "conn")
				continue
			}
			body, rerr := io.ReadAll(resp.Body)
			_ = resp.Body.Close()
			switch {
			case rerr != nil:
				outcomes = append(outcomes, "trunc")
			case bytes.Equal(body, payload):
				outcomes = append(outcomes, "ok")
			default:
				outcomes = append(outcomes, "SILENT-CORRUPTION")
			}
		}
		return outcomes
	}
	o1, o2 := run(9), run(9)
	if !reflect.DeepEqual(o1, o2) {
		t.Fatalf("same seed, different outcomes:\n%v\n%v", o1, o2)
	}
	counts := map[string]int{}
	for _, o := range o1 {
		counts[o]++
	}
	if counts["SILENT-CORRUPTION"] > 0 {
		t.Fatalf("truncated body was silently accepted: %v", counts)
	}
	if counts["conn"] == 0 || counts["trunc"] == 0 || counts["ok"] == 0 {
		t.Errorf("schedule not exercising all outcomes: %v", counts)
	}
}

// TestInjectedErrorShape: injected errors identify stream and op and
// unwrap to the sentinel.
func TestInjectedErrorShape(t *testing.T) {
	e := &Error{Stream: "file-a", Op: 17, What: "torn write (3 of 10 bytes)"}
	if !errors.Is(e, Err) {
		t.Error("Error does not unwrap to Err")
	}
	msg := e.Error()
	for _, want := range []string{"file-a", "17", "torn write"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}
