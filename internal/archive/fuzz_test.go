package archive

import (
	"bytes"
	"testing"
)

// FuzzOpenReader drives the container index parser with arbitrary bytes:
// never panic; accepted archives must serve every listed payload.
func FuzzOpenReader(f *testing.F) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Append("a", []byte("hello"))
	w.Append("b", make([]byte, 100))
	w.Close()
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("DPZA\x01"))

	f.Fuzz(func(t *testing.T, raw []byte) {
		r, err := OpenReader(bytes.NewReader(raw), int64(len(raw)))
		if err != nil {
			return
		}
		for _, name := range r.Names() {
			if _, err := r.Payload(name); err != nil {
				t.Fatalf("accepted archive cannot read %q: %v", name, err)
			}
		}
	})
}
