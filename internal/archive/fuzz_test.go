package archive

import (
	"bytes"
	"errors"
	"os"
	"testing"

	"dpz/internal/integrity"
)

// FuzzOpenReader drives the container parsers (indexed fast path and
// frame-scan recovery) with arbitrary bytes: never panic; accepted
// archives must serve every listed payload, where for v2 a checksum
// mismatch (integrity.ErrCRC) is a valid outcome of a mutated payload —
// detection, not acceptance.
func FuzzOpenReader(f *testing.F) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Append("a", []byte("hello"))
	w.Append("b", make([]byte, 100))
	w.Close()
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("DPZA\x01"))
	f.Add([]byte("DPZA\x02DPZE"))
	if golden, err := os.ReadFile("testdata/golden_v1.dpza"); err == nil {
		f.Add(golden)
	}

	f.Fuzz(func(t *testing.T, raw []byte) {
		for _, o := range []Options{{}, {AllowRecovery: true}} {
			r, err := Open(bytes.NewReader(raw), int64(len(raw)), o)
			if err != nil {
				continue
			}
			for _, name := range r.Names() {
				if _, err := r.Payload(name); err != nil && !errors.Is(err, integrity.ErrCRC) {
					t.Fatalf("accepted archive cannot read %q: %v", name, err)
				}
			}
		}
	})
}
