// Package archive implements a simple multi-field container for DPZ
// streams: a climate or simulation campaign writes many named fields into
// one file and reads any of them back without scanning the rest. The
// layout is append-friendly (entries stream out as they are added; the
// index lands at the tail), and — since version 2 — crash-recoverable:
// every entry is a self-framing, checksummed record, so a truncated or
// index-corrupted file can be salvaged by scanning for entry frames.
//
//	magic "DPZA" | version u8 (= 2)
//	per entry: magic "DPZE" | nameLen u16 | name | length u64 |
//	           crc u32 (CRC-32C of payload) | payload
//	index: count u32, then per entry
//	       (nameLen u16, name, offset u64 of the entry frame,
//	        length u64 of the payload, crc u32)
//	index CRC u32 (CRC-32C of the index bytes)
//	footer: indexLen u64 | magic "DPZA"
//
// Version 1 files (no entry framing, no checksums, index without CRC)
// remain readable; OpenReader dispatches on the version byte.
package archive

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"dpz/internal/integrity"
)

var (
	magic      = []byte("DPZA")
	entryMagic = []byte("DPZE")
)

const (
	version1 = 1
	version2 = 2
	version  = version2
)

// entryFixed is the non-name size of a v2 entry frame: entry magic,
// nameLen, payload length and CRC.
const entryFixed = 4 + 2 + 8 + 4

// ErrClosed is returned by Append and Close once the Writer has been
// closed, so `defer w.Close()` after an explicit Close is harmless and
// callers can errors.Is the condition.
var ErrClosed = errors.New("archive: writer closed")

// entry locates one field inside the container.
type entry struct {
	name       string
	offset     int64 // v2: frame start; v1: payload start
	payloadOff int64
	length     int64
	crc        uint32 // payload CRC-32C (v2 only)
}

// Writer appends named payloads to an io.Writer and finishes with the
// index. The Writer is not safe for concurrent use. Close is idempotent:
// the first call finalizes the file, later calls return ErrClosed.
type Writer struct {
	w       io.Writer
	off     int64
	entries []entry
	names   map[string]bool
	closed  bool
}

// NewWriter starts a container on w.
func NewWriter(w io.Writer) (*Writer, error) {
	aw := &Writer{w: w, names: make(map[string]bool)}
	n, err := w.Write(append(append([]byte{}, magic...), version))
	aw.off = int64(n)
	if err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	return aw, nil
}

// Append stores payload under name as a self-framing, checksummed entry.
// Names must be unique, non-empty and at most 65535 bytes.
func (a *Writer) Append(name string, payload []byte) error {
	if a.closed {
		return fmt.Errorf("archive: append after close: %w", ErrClosed)
	}
	if name == "" || len(name) > math.MaxUint16 {
		return fmt.Errorf("archive: invalid field name length %d", len(name))
	}
	if a.names[name] {
		return fmt.Errorf("archive: duplicate field %q", name)
	}
	frame := make([]byte, 0, entryFixed+len(name)+len(payload))
	frame = append(frame, entryMagic...)
	var b2 [2]byte
	binary.LittleEndian.PutUint16(b2[:], uint16(len(name)))
	frame = append(frame, b2[:]...)
	frame = append(frame, name...)
	frame = integrity.AppendFrame(frame, payload)
	n, err := a.w.Write(frame)
	if err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	headerLen := int64(entryFixed + len(name))
	a.entries = append(a.entries, entry{
		name:       name,
		offset:     a.off,
		payloadOff: a.off + headerLen,
		length:     int64(len(payload)),
		crc:        integrity.Checksum(payload),
	})
	a.names[name] = true
	a.off += int64(n)
	return nil
}

// Close writes the checksummed index and footer. A second Close returns
// ErrClosed without writing anything.
func (a *Writer) Close() error {
	if a.closed {
		return ErrClosed
	}
	a.closed = true
	var idx []byte
	var b8 [8]byte
	binary.LittleEndian.PutUint32(b8[:4], uint32(len(a.entries)))
	idx = append(idx, b8[:4]...)
	for _, e := range a.entries {
		var b2 [2]byte
		binary.LittleEndian.PutUint16(b2[:], uint16(len(e.name)))
		idx = append(idx, b2[:]...)
		idx = append(idx, e.name...)
		binary.LittleEndian.PutUint64(b8[:], uint64(e.offset))
		idx = append(idx, b8[:]...)
		binary.LittleEndian.PutUint64(b8[:], uint64(e.length))
		idx = append(idx, b8[:]...)
		binary.LittleEndian.PutUint32(b8[:4], e.crc)
		idx = append(idx, b8[:4]...)
	}
	if _, err := a.w.Write(idx); err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	binary.LittleEndian.PutUint32(b8[:4], integrity.Checksum(idx))
	if _, err := a.w.Write(b8[:4]); err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	binary.LittleEndian.PutUint64(b8[:], uint64(len(idx)))
	if _, err := a.w.Write(b8[:]); err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	if _, err := a.w.Write(magic); err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	return nil
}

// Options configures OpenReader's fallback behaviour.
type Options struct {
	// AllowRecovery falls back to an entry-frame scan (Recover) when a v2
	// archive's tail index is missing, truncated or fails its checksum —
	// the crash-recovery path for torn writes. v1 archives have no entry
	// frames and cannot be recovered this way.
	AllowRecovery bool
}

// Reader provides random access to a finished container.
type Reader struct {
	r         io.ReaderAt
	version   int
	entries   []entry
	byName    map[string]int
	recovered bool
}

// OpenReader parses the index of a container of the given total size.
func OpenReader(r io.ReaderAt, size int64) (*Reader, error) {
	return Open(r, size, Options{})
}

// Open parses a container, optionally falling back to frame-scan
// recovery when the index is unusable (see Options.AllowRecovery).
func Open(r io.ReaderAt, size int64, o Options) (*Reader, error) {
	rd, err := openIndexed(r, size)
	if err == nil || !o.AllowRecovery {
		return rd, err
	}
	head := make([]byte, len(magic)+1)
	if _, herr := r.ReadAt(head, 0); herr != nil || !bytes.Equal(head[:4], magic) || head[4] != version2 {
		return nil, err // not a v2 archive; nothing to scan for
	}
	// RecoverDurable bounds the scan to the last commit record when the
	// file came from a DurableWriter, and degrades to a plain frame scan
	// otherwise.
	rec, rerr := RecoverDurable(r, size)
	if rerr != nil {
		return nil, fmt.Errorf("%w (recovery scan also failed: %w)", err, rerr)
	}
	return rec, nil
}

// openIndexed is the fast path: parse the tail index.
func openIndexed(r io.ReaderAt, size int64) (*Reader, error) {
	if size < int64(len(magic)+1+8+len(magic)) {
		return nil, errors.New("archive: too short")
	}
	head := make([]byte, len(magic)+1)
	if _, err := r.ReadAt(head, 0); err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	if !bytes.Equal(head[:4], magic) {
		return nil, errors.New("archive: bad magic")
	}
	switch head[4] {
	case version1, version2:
	default:
		return nil, fmt.Errorf("archive: unsupported version %d", head[4])
	}
	ver := int(head[4])
	foot := make([]byte, 8+len(magic))
	if _, err := r.ReadAt(foot, size-int64(len(foot))); err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	if !bytes.Equal(foot[8:], magic) {
		return nil, errors.New("archive: bad footer magic")
	}
	idxLen := int64(binary.LittleEndian.Uint64(foot[:8]))
	tail := int64(len(foot))
	if ver == version2 {
		tail += 4 // index CRC between index and footer
	}
	idxStart := size - tail - idxLen
	if idxLen < 4 || idxStart < int64(len(head)) {
		return nil, errors.New("archive: corrupt index size")
	}
	idxBuf := make([]byte, idxLen+tail-int64(len(foot)))
	if _, err := r.ReadAt(idxBuf, idxStart); err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	idx := idxBuf[:idxLen]
	if ver == version2 {
		want := binary.LittleEndian.Uint32(idxBuf[idxLen:])
		if got := integrity.Checksum(idx); got != want {
			return nil, fmt.Errorf("archive: index %w (stored %08x, computed %08x)", integrity.ErrCRC, want, got)
		}
	}
	count := int(binary.LittleEndian.Uint32(idx[:4]))
	// Each index entry needs at least 18 (v1) / 22 (v2) bytes; a larger
	// declared count is corruption and must not pre-size the lookup map
	// (found by FuzzOpenReader).
	entryMin := 18
	if ver == version2 {
		entryMin = 22
	}
	if count > (len(idx)-4)/entryMin {
		return nil, fmt.Errorf("archive: index declares %d entries in %d bytes", count, len(idx))
	}
	pos := 4
	rd := &Reader{r: r, version: ver, byName: make(map[string]int, count)}
	for i := 0; i < count; i++ {
		if pos+2 > len(idx) {
			return nil, errors.New("archive: truncated index")
		}
		nameLen := int(binary.LittleEndian.Uint16(idx[pos:]))
		pos += 2
		if pos+nameLen+entryMin-2 > len(idx) {
			return nil, errors.New("archive: truncated index entry")
		}
		name := string(idx[pos : pos+nameLen])
		pos += nameLen
		off := int64(binary.LittleEndian.Uint64(idx[pos:]))
		pos += 8
		length := int64(binary.LittleEndian.Uint64(idx[pos:]))
		pos += 8
		e := entry{name: name, offset: off, payloadOff: off, length: length}
		if ver == version2 {
			e.crc = binary.LittleEndian.Uint32(idx[pos:])
			pos += 4
			e.payloadOff = off + int64(entryFixed+nameLen)
		}
		if off < int64(len(head)) || length < 0 || e.payloadOff+length > idxStart {
			return nil, fmt.Errorf("archive: entry %q out of bounds", name)
		}
		if _, dup := rd.byName[name]; dup {
			return nil, fmt.Errorf("archive: duplicate entry %q", name)
		}
		rd.byName[name] = len(rd.entries)
		rd.entries = append(rd.entries, e)
	}
	if pos != len(idx) {
		return nil, errors.New("archive: trailing index bytes")
	}
	return rd, nil
}

// Recover scans a v2 container for intact entry frames, ignoring the
// tail index entirely: the salvage path for truncated or index-corrupted
// archives. Every frame whose structure and payload checksum are intact
// becomes a readable field; damaged regions are skipped. When the same
// name appears in several intact frames the first one wins.
func Recover(r io.ReaderAt, size int64) (*Reader, error) {
	head := make([]byte, len(magic)+1)
	if size < int64(len(head)) {
		return nil, errors.New("archive: too short to recover")
	}
	if _, err := r.ReadAt(head, 0); err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	if !bytes.Equal(head[:4], magic) {
		return nil, errors.New("archive: bad magic")
	}
	if head[4] != version2 {
		return nil, fmt.Errorf("archive: version %d archives have no entry frames to recover", head[4])
	}
	rd := &Reader{r: r, version: version2, byName: make(map[string]int), recovered: true}
	pos := int64(len(head))
	for pos+int64(entryFixed) <= size {
		off, found, err := findFrameMagic(r, pos, size)
		if err != nil {
			return nil, err
		}
		if !found {
			break
		}
		e, frameLen, ok := tryFrame(r, off, size)
		if !ok {
			pos = off + 1 // resync: the magic was a payload coincidence or the frame is damaged
			continue
		}
		if _, dup := rd.byName[e.name]; dup {
			pos = off + frameLen
			continue
		}
		rd.byName[e.name] = len(rd.entries)
		rd.entries = append(rd.entries, e)
		pos = off + frameLen
	}
	return rd, nil
}

// findFrameMagic locates the next "DPZE" at or after pos, reading in
// chunks with a 3-byte overlap so matches spanning chunk edges are found.
func findFrameMagic(r io.ReaderAt, pos, size int64) (int64, bool, error) {
	const chunk = 64 << 10
	buf := make([]byte, chunk)
	for pos < size {
		n := int64(len(buf))
		if pos+n > size {
			n = size - pos
		}
		if _, err := r.ReadAt(buf[:n], pos); err != nil && err != io.EOF {
			return 0, false, fmt.Errorf("archive: recovery scan: %w", err)
		}
		if i := bytes.Index(buf[:n], entryMagic); i >= 0 {
			return pos + int64(i), true, nil
		}
		if pos+n >= size {
			break
		}
		pos += n - int64(len(entryMagic)-1)
	}
	return 0, false, nil
}

// tryFrame validates the entry frame at off: structural bounds, then the
// payload checksum. It returns the entry and the total frame length.
func tryFrame(r io.ReaderAt, off, size int64) (entry, int64, bool) {
	hdr := make([]byte, 6)
	if off+int64(entryFixed) > size {
		return entry{}, 0, false
	}
	if _, err := r.ReadAt(hdr, off); err != nil {
		return entry{}, 0, false
	}
	nameLen := int64(binary.LittleEndian.Uint16(hdr[4:]))
	if nameLen == 0 || off+int64(entryFixed)+nameLen > size {
		return entry{}, 0, false
	}
	rest := make([]byte, nameLen+12)
	if _, err := r.ReadAt(rest, off+6); err != nil {
		return entry{}, 0, false
	}
	name := string(rest[:nameLen])
	length := binary.LittleEndian.Uint64(rest[nameLen:])
	crc := binary.LittleEndian.Uint32(rest[nameLen+8:])
	payloadOff := off + int64(entryFixed) + nameLen
	if length > uint64(size) || payloadOff+int64(length) > size {
		return entry{}, 0, false
	}
	payload := make([]byte, length)
	if _, err := r.ReadAt(payload, payloadOff); err != nil {
		return entry{}, 0, false
	}
	if integrity.Checksum(payload) != crc {
		return entry{}, 0, false
	}
	e := entry{name: name, offset: off, payloadOff: payloadOff, length: int64(length), crc: crc}
	return e, int64(entryFixed) + nameLen + int64(length), true
}

// Names lists the stored fields in append order.
func (r *Reader) Names() []string {
	out := make([]string, len(r.entries))
	for i, e := range r.entries {
		out[i] = e.name
	}
	return out
}

// Len returns the number of stored fields.
func (r *Reader) Len() int { return len(r.entries) }

// Version reports the container format version (1 or 2).
func (r *Reader) Version() int { return r.version }

// Recovered reports whether this Reader came from a frame-scan salvage
// rather than the tail index.
func (r *Reader) Recovered() bool { return r.recovered }

// Payload reads the raw bytes of the named field. For v2 containers the
// payload checksum is verified on every read; a mismatch surfaces as an
// error wrapping integrity.ErrCRC.
func (r *Reader) Payload(name string) ([]byte, error) {
	i, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("archive: no field %q", name)
	}
	e := r.entries[i]
	buf := make([]byte, e.length)
	if _, err := r.r.ReadAt(buf, e.payloadOff); err != nil {
		return nil, fmt.Errorf("archive: reading %q: %w", name, err)
	}
	if r.version >= version2 {
		if got := integrity.Checksum(buf); got != e.crc {
			return nil, fmt.Errorf("archive: field %q %w (stored %08x, computed %08x)", name, integrity.ErrCRC, e.crc, got)
		}
	}
	return buf, nil
}

// FieldStatus reports one field's integrity from Verify.
type FieldStatus struct {
	Name   string
	Length int64
	OK     bool
	Err    error // nil when OK
}

// Verify reads every field and checks its payload checksum (v2; v1
// archives carry no checksums, so only readability is checked). The
// archive's structure was already validated when the Reader was opened.
func (r *Reader) Verify() []FieldStatus {
	out := make([]FieldStatus, 0, len(r.entries))
	for _, e := range r.entries {
		_, err := r.Payload(e.name)
		out = append(out, FieldStatus{Name: e.name, Length: e.length, OK: err == nil, Err: err})
	}
	return out
}
