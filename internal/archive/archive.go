// Package archive implements a simple multi-field container for DPZ
// streams: a climate or simulation campaign writes many named fields into
// one file and reads any of them back without scanning the rest. The
// layout is append-friendly (entries stream out as they are added; the
// index lands at the tail):
//
//	magic "DPZA" | version u8
//	per entry: payload bytes
//	index: count u32, then per entry (nameLen u16, name, offset u64, length u64)
//	footer: indexLen u64 | magic "DPZA"
package archive

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

var magic = []byte("DPZA")

const version = 1

// entry locates one field inside the container.
type entry struct {
	name   string
	offset int64
	length int64
}

// Writer appends named payloads to an io.Writer and finishes with the
// index. Close must be called exactly once; the Writer is not safe for
// concurrent use.
type Writer struct {
	w       io.Writer
	off     int64
	entries []entry
	names   map[string]bool
	closed  bool
}

// NewWriter starts a container on w.
func NewWriter(w io.Writer) (*Writer, error) {
	aw := &Writer{w: w, names: make(map[string]bool)}
	n, err := w.Write(append(append([]byte{}, magic...), version))
	aw.off = int64(n)
	if err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	return aw, nil
}

// Append stores payload under name. Names must be unique, non-empty and
// at most 65535 bytes.
func (a *Writer) Append(name string, payload []byte) error {
	if a.closed {
		return errors.New("archive: writer closed")
	}
	if name == "" || len(name) > math.MaxUint16 {
		return fmt.Errorf("archive: invalid field name length %d", len(name))
	}
	if a.names[name] {
		return fmt.Errorf("archive: duplicate field %q", name)
	}
	n, err := a.w.Write(payload)
	if err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	a.entries = append(a.entries, entry{name: name, offset: a.off, length: int64(n)})
	a.names[name] = true
	a.off += int64(n)
	return nil
}

// Close writes the index and footer.
func (a *Writer) Close() error {
	if a.closed {
		return errors.New("archive: writer closed")
	}
	a.closed = true
	var idx []byte
	var b8 [8]byte
	binary.LittleEndian.PutUint32(b8[:4], uint32(len(a.entries)))
	idx = append(idx, b8[:4]...)
	for _, e := range a.entries {
		var b2 [2]byte
		binary.LittleEndian.PutUint16(b2[:], uint16(len(e.name)))
		idx = append(idx, b2[:]...)
		idx = append(idx, e.name...)
		binary.LittleEndian.PutUint64(b8[:], uint64(e.offset))
		idx = append(idx, b8[:]...)
		binary.LittleEndian.PutUint64(b8[:], uint64(e.length))
		idx = append(idx, b8[:]...)
	}
	if _, err := a.w.Write(idx); err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	binary.LittleEndian.PutUint64(b8[:], uint64(len(idx)))
	if _, err := a.w.Write(b8[:]); err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	if _, err := a.w.Write(magic); err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	return nil
}

// Reader provides random access to a finished container.
type Reader struct {
	r       io.ReaderAt
	entries []entry
	byName  map[string]int
}

// OpenReader parses the index of a container of the given total size.
func OpenReader(r io.ReaderAt, size int64) (*Reader, error) {
	if size < int64(len(magic)+1+8+len(magic)) {
		return nil, errors.New("archive: too short")
	}
	head := make([]byte, len(magic)+1)
	if _, err := r.ReadAt(head, 0); err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	if string(head[:4]) != string(magic) {
		return nil, errors.New("archive: bad magic")
	}
	if head[4] != version {
		return nil, fmt.Errorf("archive: unsupported version %d", head[4])
	}
	foot := make([]byte, 8+len(magic))
	if _, err := r.ReadAt(foot, size-int64(len(foot))); err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	if string(foot[8:]) != string(magic) {
		return nil, errors.New("archive: bad footer magic")
	}
	idxLen := int64(binary.LittleEndian.Uint64(foot[:8]))
	idxStart := size - int64(len(foot)) - idxLen
	if idxLen < 4 || idxStart < int64(len(head)) {
		return nil, errors.New("archive: corrupt index size")
	}
	idx := make([]byte, idxLen)
	if _, err := r.ReadAt(idx, idxStart); err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	count := int(binary.LittleEndian.Uint32(idx[:4]))
	// Each entry needs at least 18 index bytes (nameLen + empty-name
	// bound + offset + length); a larger declared count is corruption and
	// must not pre-size the lookup map (found by FuzzOpenReader).
	if count > (len(idx)-4)/18 {
		return nil, fmt.Errorf("archive: index declares %d entries in %d bytes", count, len(idx))
	}
	pos := 4
	rd := &Reader{r: r, byName: make(map[string]int, count)}
	for i := 0; i < count; i++ {
		if pos+2 > len(idx) {
			return nil, errors.New("archive: truncated index")
		}
		nameLen := int(binary.LittleEndian.Uint16(idx[pos:]))
		pos += 2
		if pos+nameLen+16 > len(idx) {
			return nil, errors.New("archive: truncated index entry")
		}
		name := string(idx[pos : pos+nameLen])
		pos += nameLen
		off := int64(binary.LittleEndian.Uint64(idx[pos:]))
		pos += 8
		length := int64(binary.LittleEndian.Uint64(idx[pos:]))
		pos += 8
		if off < int64(len(head)) || length < 0 || off+length > idxStart {
			return nil, fmt.Errorf("archive: entry %q out of bounds", name)
		}
		if _, dup := rd.byName[name]; dup {
			return nil, fmt.Errorf("archive: duplicate entry %q", name)
		}
		rd.byName[name] = len(rd.entries)
		rd.entries = append(rd.entries, entry{name: name, offset: off, length: length})
	}
	if pos != len(idx) {
		return nil, errors.New("archive: trailing index bytes")
	}
	return rd, nil
}

// Names lists the stored fields in append order.
func (r *Reader) Names() []string {
	out := make([]string, len(r.entries))
	for i, e := range r.entries {
		out[i] = e.name
	}
	return out
}

// Len returns the number of stored fields.
func (r *Reader) Len() int { return len(r.entries) }

// Payload reads the raw bytes of the named field.
func (r *Reader) Payload(name string) ([]byte, error) {
	i, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("archive: no field %q", name)
	}
	e := r.entries[i]
	buf := make([]byte, e.length)
	if _, err := r.r.ReadAt(buf, e.offset); err != nil {
		return nil, fmt.Errorf("archive: reading %q: %w", name, err)
	}
	return buf, nil
}
