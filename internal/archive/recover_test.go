package archive

import (
	"bytes"
	"errors"
	"os"
	"strings"
	"testing"

	"dpz/internal/integrity"
)

// buildV2 writes a deterministic v2 archive with the given fields in
// order and returns its bytes.
func buildV2(t *testing.T, names []string, fields map[string][]byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if err := w.Append(name, fields[name]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func testFields() ([]string, map[string][]byte) {
	names := []string{"fldsc", "phis", "t850", "u200"}
	return names, map[string][]byte{
		"fldsc": bytes.Repeat([]byte("abcdefg"), 400),
		"phis":  bytes.Repeat([]byte{0x00, 0xFF, 0x7C}, 500),
		"t850":  []byte("short"),
		"u200":  bytes.Repeat([]byte{9}, 2048),
	}
}

func TestGoldenV1ArchiveStillReads(t *testing.T) {
	raw, err := os.ReadFile("testdata/golden_v1.dpza")
	if err != nil {
		t.Fatal(err)
	}
	if raw[4] != version1 {
		t.Fatalf("golden archive version = %d, want 1", raw[4])
	}
	r, err := OpenReader(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatalf("v1 archive no longer opens: %v", err)
	}
	if r.Version() != version1 {
		t.Fatalf("Version() = %d", r.Version())
	}
	want := map[string][]byte{
		"fldsc": []byte("payload-one-fldsc"),
		"phis":  bytes.Repeat([]byte{0xAB, 0x00, 0x7F}, 100),
		"t850":  {},
	}
	names := r.Names()
	if len(names) != 3 || names[0] != "fldsc" || names[1] != "phis" || names[2] != "t850" {
		t.Fatalf("names = %v", names)
	}
	for name, w := range want {
		got, err := r.Payload(name)
		if err != nil {
			t.Fatalf("payload %q: %v", name, err)
		}
		if !bytes.Equal(got, w) {
			t.Fatalf("payload %q no longer byte-identical", name)
		}
	}
	// v1 archives cannot be frame-recovered, and Open must say so rather
	// than silently degrade.
	if _, err := Recover(bytes.NewReader(raw), int64(len(raw))); err == nil {
		t.Fatal("Recover accepted a v1 archive")
	}
	for _, st := range r.Verify() {
		if !st.OK {
			t.Fatalf("v1 verify flagged %q: %v", st.Name, st.Err)
		}
	}
}

func TestV2PayloadChecksumOnRead(t *testing.T) {
	names, fields := testFields()
	raw := buildV2(t, names, fields)
	// Flip one byte in the middle of a payload: exactly that field must
	// fail its read and its verify, all others stay intact.
	r, err := OpenReader(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	target := "phis"
	i := r.byName[target]
	bad := append([]byte(nil), raw...)
	bad[r.entries[i].payloadOff+r.entries[i].length/2] ^= 0x01

	br, err := OpenReader(bytes.NewReader(bad), int64(len(bad)))
	if err != nil {
		t.Fatalf("index should still open: %v", err)
	}
	if _, err := br.Payload(target); !errors.Is(err, integrity.ErrCRC) {
		t.Fatalf("corrupted payload read = %v, want ErrCRC", err)
	}
	var flagged []string
	for _, st := range br.Verify() {
		if !st.OK {
			flagged = append(flagged, st.Name)
		}
	}
	if len(flagged) != 1 || flagged[0] != target {
		t.Fatalf("verify flagged %v, want exactly [%s]", flagged, target)
	}
	for _, name := range names {
		if name == target {
			continue
		}
		got, err := br.Payload(name)
		if err != nil || !bytes.Equal(got, fields[name]) {
			t.Fatalf("undamaged field %q unreadable: %v", name, err)
		}
	}
}

func TestRecoverFromTruncation(t *testing.T) {
	names, fields := testFields()
	raw := buildV2(t, names, fields)
	// Cut the file mid-way through the last entry: the index and the tail
	// entry are gone; everything before must be salvageable.
	cut := raw[:len(raw)-int(int64(len(fields["u200"]))/2)-200]
	if _, err := OpenReader(bytes.NewReader(cut), int64(len(cut))); err == nil {
		t.Fatal("truncated archive opened via index")
	}
	r, err := Open(bytes.NewReader(cut), int64(len(cut)), Options{AllowRecovery: true})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if !r.Recovered() {
		t.Fatal("reader does not report recovery")
	}
	got := r.Names()
	if len(got) != 3 {
		t.Fatalf("recovered %v, want the first three fields", got)
	}
	for _, name := range names[:3] {
		p, err := r.Payload(name)
		if err != nil || !bytes.Equal(p, fields[name]) {
			t.Fatalf("recovered field %q wrong: %v", name, err)
		}
	}
}

func TestRecoverFromCorruptIndex(t *testing.T) {
	names, fields := testFields()
	raw := buildV2(t, names, fields)
	// Damage one byte inside the index region: the CRC'd index must be
	// rejected and recovery must restore every field.
	bad := append([]byte(nil), raw...)
	bad[len(bad)-20] ^= 0xFF
	if _, err := OpenReader(bytes.NewReader(bad), int64(len(bad))); err == nil {
		t.Fatal("corrupt index accepted")
	}
	r, err := Open(bytes.NewReader(bad), int64(len(bad)), Options{AllowRecovery: true})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if got := r.Names(); len(got) != len(names) {
		t.Fatalf("recovered %v, want all %d fields", got, len(names))
	}
	for _, name := range names {
		p, err := r.Payload(name)
		if err != nil || !bytes.Equal(p, fields[name]) {
			t.Fatalf("recovered field %q wrong: %v", name, err)
		}
	}
}

func TestRecoverSkipsDamagedEntry(t *testing.T) {
	names, fields := testFields()
	raw := buildV2(t, names, fields)
	// One bit flipped in one field's payload: Recover must salvage every
	// other field intact and drop the damaged one.
	r, err := OpenReader(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	target := "fldsc"
	e := r.entries[r.byName[target]]
	bad := append([]byte(nil), raw...)
	bad[e.payloadOff+e.length/2] ^= 0x10

	rec, err := Recover(bytes.NewReader(bad), int64(len(bad)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Payload(target); err == nil {
		t.Fatalf("damaged field %q recovered as intact", target)
	}
	for _, name := range names {
		if name == target {
			continue
		}
		p, err := rec.Payload(name)
		if err != nil || !bytes.Equal(p, fields[name]) {
			t.Fatalf("field %q lost during recovery: %v", name, err)
		}
	}
}

// TestRecoverPayloadContainingFrameMagic plants "DPZE" inside a payload:
// the scanner must not be fooled into misparsing the archive.
func TestRecoverPayloadContainingFrameMagic(t *testing.T) {
	decoy := append([]byte("DPZE"), 0x02, 0x00, 'x', 'x')
	decoy = append(decoy, bytes.Repeat([]byte{1}, 64)...)
	names := []string{"real1", "decoy", "real2"}
	fields := map[string][]byte{
		"real1": []byte("first payload"),
		"decoy": decoy,
		"real2": []byte("last payload"),
	}
	raw := buildV2(t, names, fields)
	rec, err := Recover(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		p, err := rec.Payload(name)
		if err != nil || !bytes.Equal(p, fields[name]) {
			t.Fatalf("field %q wrong after scan with embedded magic: %v", name, err)
		}
	}
}

func TestWriterCloseSentinel(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append("a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := w.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second close = %v, want ErrClosed", err)
	}
	if err := w.Append("b", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close = %v, want ErrClosed", err)
	}
	// The file written before the double close must still be valid.
	r, err := OpenReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestNameBoundaries(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append("", []byte("x")); err == nil {
		t.Fatal("empty name accepted")
	}
	maxName := strings.Repeat("n", 65535)
	if err := w.Append(maxName, []byte("max-name payload")); err != nil {
		t.Fatalf("65535-byte name rejected: %v", err)
	}
	if err := w.Append(maxName, []byte("dup")); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if err := w.Append(maxName+"n", []byte("x")); err == nil {
		t.Fatal("65536-byte name accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Payload(maxName)
	if err != nil || string(got) != "max-name payload" {
		t.Fatalf("max-length name round trip: %v", err)
	}
	// The long-named entry must survive frame recovery too.
	rec, err := Recover(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := rec.Payload(maxName); err != nil || string(got) != "max-name payload" {
		t.Fatalf("max-length name recovery: %v", err)
	}
}

// TestOpenNeverPanicsOnCorruption sweeps the fault harness over both the
// indexed and recovery open paths.
func TestOpenNeverPanicsOnCorruption(t *testing.T) {
	names, fields := testFields()
	raw := buildV2(t, names, fields)
	integrity.ForEach(raw, 256, func(f integrity.Fault, corrupted []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("open panicked on %s: %v", f, r)
			}
		}()
		r, err := Open(bytes.NewReader(corrupted), int64(len(corrupted)), Options{AllowRecovery: true})
		if err != nil {
			return
		}
		for _, name := range r.Names() {
			p, err := r.Payload(name)
			if err == nil && len(p) != int(r.entries[r.byName[name]].length) {
				t.Fatalf("%s: payload %q length mismatch", f, name)
			}
		}
	})
}
