package archive

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"dpz/internal/fault"
	"dpz/internal/integrity"
)

// Durable writes. Two crash-safety modes, both built on the fault.FS
// abstraction so the torn-write tests can drive them through an
// injected filesystem:
//
//   - WriteFileAtomic: whole-file atomicity via temp file + fsync +
//     rename + directory fsync. A crash at any point leaves either the
//     old file (or no file) or the complete new file — never a torn one.
//     This is the right mode for single-stream outputs.
//
//   - DurableWriter: journaled append for long-running batch archive
//     writes where partial progress must survive. The v2 entry frames
//     are the journal records; DurableWriter adds the commit discipline:
//     after every appended entry it writes a 16-byte commit record
//     ("DPZC" | u64 file length | CRC-32C) and fsyncs. A kill at any
//     byte leaves a committed prefix plus possibly a torn tail; Recover
//     (or RecoverDurable, which truncates to the last commit record
//     first) restores every committed entry byte-identically. A failed
//     Append rolls the file back to the last commit point, so the append
//     can be retried without leaving a duplicate frame behind.
//
// Readers need no changes: the indexed open ignores the commit records
// (entries are located by index offsets) and the frame-scan recovery
// resyncs past them (they carry no entry magic).

// commitMagic tags a durable-write commit record.
var commitMagic = []byte("DPZC")

// commitRecordLen is the on-disk size of one commit record: magic, u64
// committed length, CRC-32C of the first 12 bytes.
const commitRecordLen = 4 + 8 + 4

// appendCommitRecord appends a commit record declaring that the file is
// valid up to length bytes (the length INCLUDES this record).
func appendCommitRecord(dst []byte, length int64) []byte {
	start := len(dst)
	dst = append(dst, commitMagic...)
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], uint64(length))
	dst = append(dst, b8[:]...)
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], integrity.Checksum(dst[start:start+12]))
	return append(dst, b4[:]...)
}

// parseCommitRecord validates a commit record at buf and returns the
// committed length.
func parseCommitRecord(buf []byte) (int64, bool) {
	if len(buf) < commitRecordLen || string(buf[:4]) != string(commitMagic) {
		return 0, false
	}
	if integrity.Checksum(buf[:12]) != binary.LittleEndian.Uint32(buf[12:16]) {
		return 0, false
	}
	return int64(binary.LittleEndian.Uint64(buf[4:12])), true
}

// WriteFileAtomic writes a file via build with full crash atomicity:
// the content lands in path+".tmp", is fsynced, atomically renamed onto
// path, and the directory is fsynced. A crash anywhere leaves either the
// previous state of path or the complete new file (a leftover .tmp is
// ignored by readers and overwritten by the next attempt). On error the
// temp file is removed best-effort.
func WriteFileAtomic(fsys fault.FS, path string, build func(w io.Writer) error) (err error) {
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("archive: atomic write: %w", err)
	}
	defer func() {
		if err != nil {
			_ = fsys.Remove(tmp) // best-effort cleanup; the write already failed
		}
	}()
	if err = build(f); err != nil {
		_ = f.Close()
		return err
	}
	if err = f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("archive: atomic write sync: %w", err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("archive: atomic write close: %w", err)
	}
	if err = fsys.Rename(tmp, path); err != nil {
		return fmt.Errorf("archive: atomic rename: %w", err)
	}
	if err = fsys.SyncDir(path); err != nil {
		return fmt.Errorf("archive: atomic dir sync: %w", err)
	}
	return nil
}

// ErrBroken is returned by DurableWriter.Append and Close after a
// failure that could not be rolled back: the on-disk state is still
// recoverable up to the last commit, but this writer cannot continue.
var ErrBroken = errors.New("archive: durable writer broken (rollback failed)")

// DurableWriter appends entries to an archive file with per-entry
// commit-and-fsync durability. See the package comment block above for
// the crash model. Not safe for concurrent use.
type DurableWriter struct {
	fsys      fault.FS
	f         fault.File
	path      string
	w         *Writer
	committed int64 // durable, committed file length
	broken    bool
	closed    bool
}

// countingWriter tracks how many bytes reached the file, including any
// prefix of a torn write, so rollback knows what to truncate.
type countingWriter struct {
	f fault.File
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.f.Write(p)
	c.n += int64(n)
	return n, err
}

// NewDurableWriter creates the archive file at path (which must not
// exist), writes and commits the header, and fsyncs the directory so the
// file name itself survives a crash.
func NewDurableWriter(fsys fault.FS, path string) (*DurableWriter, error) {
	f, err := fsys.CreateExcl(path)
	if err != nil {
		return nil, fmt.Errorf("archive: durable create: %w", err)
	}
	cw := &countingWriter{f: f}
	w, err := NewWriter(cw)
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	d := &DurableWriter{fsys: fsys, f: f, path: path, w: w}
	if err := d.commit(); err != nil {
		_ = f.Close()
		return nil, err
	}
	if err := fsys.SyncDir(path); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("archive: durable dir sync: %w", err)
	}
	return d, nil
}

// commit writes a commit record for the current file length and fsyncs.
// On success the writer's committed watermark advances.
func (d *DurableWriter) commit() error {
	cw := d.w.w.(*countingWriter)
	rec := appendCommitRecord(nil, cw.n+commitRecordLen)
	if _, err := d.w.w.Write(rec); err != nil {
		return fmt.Errorf("archive: commit record: %w", err)
	}
	d.w.off = cw.n // keep entry offsets in sync with the real file length
	if err := d.f.Sync(); err != nil {
		return fmt.Errorf("archive: commit sync: %w", err)
	}
	d.committed = cw.n
	return nil
}

// rollback truncates the file to the last commit point after a failed
// append, dropping the torn frame so the append can be retried. If the
// truncate itself fails the writer is broken (the file stays recoverable
// to the last commit either way).
func (d *DurableWriter) rollback(name string) error {
	if err := d.f.Truncate(d.committed); err != nil {
		d.broken = true
		return fmt.Errorf("%w: truncate to %d: %w", ErrBroken, d.committed, err)
	}
	cw := d.w.w.(*countingWriter)
	cw.n = d.committed
	d.w.off = d.committed
	// Drop the failed entry's bookkeeping so a retry is not a duplicate.
	if n := len(d.w.entries); n > 0 && d.w.entries[n-1].name == name {
		d.w.entries = d.w.entries[:n-1]
		delete(d.w.names, name)
	}
	return nil
}

// Committed returns the durable file length: everything up to it is
// fsynced and ends at a commit record.
func (d *DurableWriter) Committed() int64 { return d.committed }

// Append stores payload under name, then commits: the entry frame and a
// commit record are on stable storage before Append returns nil. On a
// write or sync failure the file is rolled back to the previous commit
// point and the same Append may be retried.
func (d *DurableWriter) Append(name string, payload []byte) error {
	if d.broken {
		return ErrBroken
	}
	if d.closed {
		return fmt.Errorf("archive: durable append after close: %w", ErrClosed)
	}
	if err := d.w.Append(name, payload); err != nil {
		if rbErr := d.rollback(name); rbErr != nil {
			return fmt.Errorf("%w (after append error: %w)", rbErr, err)
		}
		return err
	}
	if err := d.commit(); err != nil {
		if rbErr := d.rollback(name); rbErr != nil {
			return fmt.Errorf("%w (after commit error: %w)", rbErr, err)
		}
		return err
	}
	return nil
}

// Close writes the index and footer, commits them, and closes the file.
// After a successful Close the archive opens through the fast indexed
// path; after a crash before it, RecoverDurable restores every committed
// entry.
func (d *DurableWriter) Close() error {
	if d.broken {
		return ErrBroken
	}
	if d.closed {
		return ErrClosed
	}
	d.closed = true
	if err := d.w.Close(); err != nil {
		return err
	}
	if err := d.f.Sync(); err != nil {
		return fmt.Errorf("archive: close sync: %w", err)
	}
	if err := d.f.Close(); err != nil {
		return fmt.Errorf("archive: close: %w", err)
	}
	return nil
}

// lastCommit walks a durable archive's commit chain and returns the
// length covered by the last intact commit record, or 0 when none is
// intact. Each record declares the file length it covers (its own end
// offset) and exactly one entry frame sits between consecutive records,
// so the chain is walked forward from the header: record, frame, record,
// frame, ... until a torn tail or the (post-Close) index breaks it.
func lastCommit(r io.ReaderAt, size int64) int64 {
	var committed int64
	pos := int64(len(magic) + 1) // first commit record follows the header
	buf := make([]byte, commitRecordLen)
	for pos+commitRecordLen <= size {
		if _, err := r.ReadAt(buf, pos); err != nil {
			break
		}
		length, ok := parseCommitRecord(buf)
		if !ok || length != pos+commitRecordLen {
			break // torn tail, or the index of a cleanly closed file
		}
		committed = length
		next, ok := nextCommitPos(r, size, length)
		if !ok {
			break
		}
		pos = next
	}
	return committed
}

// nextCommitPos parses the entry frame starting at pos and returns the
// offset of the commit record that should follow it.
func nextCommitPos(r io.ReaderAt, size, pos int64) (int64, bool) {
	hdr := make([]byte, 6)
	if pos+int64(entryFixed) > size {
		return 0, false
	}
	if _, err := r.ReadAt(hdr, pos); err != nil {
		return 0, false
	}
	if string(hdr[:4]) != string(entryMagic) {
		return 0, false
	}
	nameLen := int64(binary.LittleEndian.Uint16(hdr[4:]))
	lenBuf := make([]byte, 8)
	if _, err := r.ReadAt(lenBuf, pos+6+nameLen); err != nil {
		return 0, false
	}
	payloadLen := int64(binary.LittleEndian.Uint64(lenBuf))
	if payloadLen < 0 || payloadLen > size {
		return 0, false
	}
	next := pos + int64(entryFixed) + nameLen + payloadLen
	if next > size {
		return 0, false
	}
	return next, true
}

// RecoverDurable opens a durable archive that may have a torn tail: it
// finds the last intact commit record, restricts the view to that
// committed prefix, and frame-scans it. Every entry whose append
// committed is restored byte-identically; torn or uncommitted tail bytes
// are ignored. Recovery is idempotent: recovering an already-recovered
// (or clean) image yields the same entries. Falls back to a full-size
// Recover when no commit record is found (a plain v2 archive).
func RecoverDurable(r io.ReaderAt, size int64) (*Reader, error) {
	committed := lastCommit(r, size)
	if committed <= 0 {
		return Recover(r, size)
	}
	return Recover(r, committed)
}

// RecoverDurableFile is RecoverDurable over a file in fsys.
func RecoverDurableFile(fsys fault.FS, path string) (*Reader, fault.File, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("archive: recover open: %w", err)
	}
	size, err := fsys.Size(path)
	if err != nil {
		_ = f.Close()
		return nil, nil, fmt.Errorf("archive: recover stat: %w", err)
	}
	rd, err := RecoverDurable(f, size)
	if err != nil {
		_ = f.Close()
		return nil, nil, err
	}
	return rd, f, nil
}
