package archive

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"reflect"
	"testing"

	"dpz/internal/fault"
	"dpz/internal/integrity"
)

// durableFields is the deterministic write sequence every durability
// test drives: varied sizes, an empty payload, binary data.
func durableFields() ([]string, map[string][]byte) {
	names := []string{"fldsc", "empty", "phis", "t850"}
	fields := map[string][]byte{
		"fldsc": bytes.Repeat([]byte("abcdefg"), 40),
		"empty": {},
		"phis":  bytes.Repeat([]byte{0x00, 0xFF, 0x7C}, 150),
		"t850":  []byte("short payload"),
	}
	return names, fields
}

// writeDurable runs the full append sequence on a DurableWriter over
// fsys, stopping at the first error. It returns the names whose Append
// committed (returned nil) and whether Close succeeded.
func writeDurable(fsys fault.FS, path string) (committed []string, closed bool, err error) {
	names, fields := durableFields()
	dw, err := NewDurableWriter(fsys, path)
	if err != nil {
		return nil, false, err
	}
	for _, name := range names {
		if err := dw.Append(name, fields[name]); err != nil {
			return committed, false, err
		}
		committed = append(committed, name)
	}
	if err := dw.Close(); err != nil {
		return committed, false, err
	}
	return committed, true, nil
}

// TestDurableCleanClose: with no faults, the durable writer produces an
// archive that opens through the fast indexed path, recovers to the same
// contents, and verifies clean.
func TestDurableCleanClose(t *testing.T) {
	fsys := fault.NewMemFS()
	committed, closed, err := writeDurable(fsys, "a.dpza")
	if err != nil || !closed {
		t.Fatalf("clean write failed: %v", err)
	}
	names, fields := durableFields()
	if !reflect.DeepEqual(committed, names) {
		t.Fatalf("committed %v, want %v", committed, names)
	}
	raw, err := fsys.ReadFile("a.dpza")
	if err != nil {
		t.Fatal(err)
	}
	// Fast path: the tail index is intact despite the interleaved commit
	// records.
	r, err := OpenReader(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatalf("indexed open of a durable archive: %v", err)
	}
	if got := r.Names(); !reflect.DeepEqual(got, names) {
		t.Fatalf("indexed names %v, want %v", got, names)
	}
	for _, name := range names {
		p, err := r.Payload(name)
		if err != nil || !bytes.Equal(p, fields[name]) {
			t.Fatalf("indexed payload %q: %v", name, err)
		}
	}
	// Recovery path agrees byte-for-byte.
	rec, err := RecoverDurable(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.Names(); !reflect.DeepEqual(got, names) {
		t.Fatalf("recovered names %v, want %v", got, names)
	}
	for _, name := range names {
		p, err := rec.Payload(name)
		if err != nil || !bytes.Equal(p, fields[name]) {
			t.Fatalf("recovered payload %q: %v", name, err)
		}
	}
}

// TestKillAtEveryOffset is the torn-write acceptance test: for EVERY
// byte offset of the durable write sequence, kill the filesystem at that
// byte, crash (in both page-cache modes: unsynced data lost, unsynced
// data kept), and require the survivor state to be either the pre-write
// state (no file) or fully recoverable: every recovered payload
// byte-identical to what was appended, and every append that reported
// commit actually recovered.
func TestKillAtEveryOffset(t *testing.T) {
	// Dry run to learn the total number of bytes the sequence writes.
	dry := fault.NewMemFS()
	if _, closed, err := writeDurable(dry, "a.dpza"); err != nil || !closed {
		t.Fatalf("dry run failed: %v", err)
	}
	total, err := dry.Size("a.dpza")
	if err != nil {
		t.Fatal(err)
	}
	_, fields := durableFields()

	for _, keepUnsynced := range []bool{false, true} {
		for killAt := int64(0); killAt <= total; killAt++ {
			fsys := fault.NewMemFS()
			fsys.SetWriteLimit(killAt)
			committed, closed, werr := writeDurable(fsys, "a.dpza")
			if killAt < total && werr == nil && closed {
				t.Fatalf("killAt=%d: write sequence claims success before all %d bytes", killAt, total)
			}
			fsys.Crash(keepUnsynced)

			label := fmt.Sprintf("killAt=%d keepUnsynced=%v", killAt, keepUnsynced)
			names := fsys.Names()
			if len(names) == 0 {
				// Pre-write state: the kill landed before the file's name was
				// durable. Nothing to recover — but then no append can have
				// reported a commit.
				if len(committed) > 0 {
					t.Fatalf("%s: %v committed but file lost entirely", label, committed)
				}
				continue
			}
			rec, f, err := RecoverDurableFile(fsys, "a.dpza")
			if err != nil {
				t.Fatalf("%s: recovery failed: %v", label, err)
			}
			got := map[string]bool{}
			for _, name := range rec.Names() {
				want, known := fields[name]
				if !known {
					t.Fatalf("%s: recovered unknown field %q", label, name)
				}
				p, err := rec.Payload(name)
				if err != nil {
					t.Fatalf("%s: recovered field %q unreadable: %v", label, name, err)
				}
				if !bytes.Equal(p, want) {
					t.Fatalf("%s: recovered field %q not byte-identical", label, name)
				}
				got[name] = true
			}
			for _, name := range committed {
				if !got[name] {
					t.Fatalf("%s: append of %q reported commit but recovery lost it (recovered %v)", label, name, rec.Names())
				}
			}
			if closed && werr == nil {
				// A completed Close must leave the fast indexed path working.
				raw, err := fsys.ReadFile("a.dpza")
				if err != nil {
					t.Fatal(err)
				}
				if _, err := OpenReader(bytes.NewReader(raw), int64(len(raw))); err != nil {
					t.Fatalf("%s: closed archive does not open indexed: %v", label, err)
				}
			}
			_ = f.Close()
		}
	}
}

// flakyFS tears exactly one scripted write, deterministically: write
// number failOn persists only prefixLen bytes and fails. Everything else
// passes through to the MemFS.
type flakyFS struct {
	fault.FS
	writes    int
	failOn    int
	prefixLen int
}

type flakyFile struct {
	fault.File
	fs *flakyFS
}

func (f *flakyFS) CreateExcl(path string) (fault.File, error) {
	file, err := f.FS.CreateExcl(path)
	if err != nil {
		return nil, err
	}
	return &flakyFile{File: file, fs: f}, nil
}

func (f *flakyFile) Write(p []byte) (int, error) {
	f.fs.writes++
	if f.fs.writes == f.fs.failOn {
		n := min(f.fs.prefixLen, len(p))
		if _, err := f.File.Write(p[:n]); err != nil {
			return 0, err
		}
		return n, errors.New("flaky: torn write")
	}
	return f.File.Write(p)
}

// TestDurableAppendRetry: a torn append rolls back to the last commit
// point and the SAME append retried succeeds — without leaving a
// duplicate frame for recovery to trip over.
func TestDurableAppendRetry(t *testing.T) {
	names, fields := durableFields()
	mem := fault.NewMemFS()
	// Writes: header(1), commit(2), then per append frame+commit. Fail the
	// frame write of the second append, keeping a 7-byte prefix.
	fsys := &flakyFS{FS: mem, failOn: 5, prefixLen: 7}
	dw, err := NewDurableWriter(fsys, "a.dpza")
	if err != nil {
		t.Fatal(err)
	}
	if err := dw.Append(names[0], fields[names[0]]); err != nil {
		t.Fatal(err)
	}
	before := dw.Committed()
	if err := dw.Append(names[1], fields[names[1]]); err == nil {
		t.Fatal("scripted torn append did not fail")
	}
	if dw.Committed() != before {
		t.Fatalf("failed append moved the commit point %d -> %d", before, dw.Committed())
	}
	// Retry the same append, then finish the sequence.
	for _, name := range names[1:] {
		if err := dw.Append(name, fields[name]); err != nil {
			t.Fatalf("retry/append %q: %v", name, err)
		}
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := mem.ReadFile("a.dpza")
	if err != nil {
		t.Fatal(err)
	}
	for _, open := range []func() (*Reader, error){
		func() (*Reader, error) { return OpenReader(bytes.NewReader(raw), int64(len(raw))) },
		func() (*Reader, error) { return RecoverDurable(bytes.NewReader(raw), int64(len(raw))) },
	} {
		r, err := open()
		if err != nil {
			t.Fatal(err)
		}
		if got := r.Names(); !reflect.DeepEqual(got, names) {
			t.Fatalf("names after retry %v, want %v", got, names)
		}
		for _, name := range names {
			p, err := r.Payload(name)
			if err != nil || !bytes.Equal(p, fields[name]) {
				t.Fatalf("field %q after retry: %v", name, err)
			}
		}
	}
}

// TestWriteFileAtomicKillSweep: atomic whole-file replacement under the
// same kill-at-every-offset regime. The visible file must always read as
// exactly the old content or exactly the new content.
func TestWriteFileAtomicKillSweep(t *testing.T) {
	oldContent := []byte("the old archive bytes")
	newContent := bytes.Repeat([]byte("NEW"), 200)

	// Learn the write sequence length (create temp + content).
	dry := fault.NewMemFS()
	if err := WriteFileAtomic(dry, "f", func(w io.Writer) error {
		_, err := w.Write(newContent)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	for _, keepUnsynced := range []bool{false, true} {
		for killAt := int64(0); killAt <= int64(len(newContent)); killAt++ {
			fsys := fault.NewMemFS()
			// Seed the old state durably.
			f, err := fsys.Create("f")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(oldContent); err != nil {
				t.Fatal(err)
			}
			if err := f.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := fsys.SyncDir("f"); err != nil {
				t.Fatal(err)
			}
			_ = f.Close()

			fsys.SetWriteLimit(killAt)
			werr := WriteFileAtomic(fsys, "f", func(w io.Writer) error {
				_, err := w.Write(newContent)
				return err
			})
			fsys.Crash(keepUnsynced)

			got, err := fsys.ReadFile("f")
			if err != nil {
				t.Fatalf("killAt=%d keepUnsynced=%v: file vanished: %v", killAt, keepUnsynced, err)
			}
			switch {
			case bytes.Equal(got, oldContent), bytes.Equal(got, newContent):
			default:
				t.Fatalf("killAt=%d keepUnsynced=%v (werr=%v): torn visible state (%d bytes)",
					killAt, keepUnsynced, werr, len(got))
			}
			if werr == nil && !fsys.Killed() && !bytes.Equal(got, newContent) && killAt > int64(len(newContent)) {
				t.Fatalf("killAt=%d: successful atomic write lost", killAt)
			}
		}
	}
}

// repack rewrites a reader's recovered contents through a plain Writer —
// the canonical form used to compare recovery results.
func repack(t *testing.T, r *Reader) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range r.Names() {
		p, err := r.Payload(name)
		if err != nil {
			t.Fatalf("repack %q: %v", name, err)
		}
		if err := w.Append(name, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRecoverIdempotent: Recover(Recover(x)) == Recover(x) — salvaging a
// damaged archive, rewriting it, and salvaging again changes nothing,
// for several damage shapes.
func TestRecoverIdempotent(t *testing.T) {
	names, fields := testFields()
	raw := buildV2(t, names, fields)

	damage := map[string]func([]byte) []byte{
		"zero-length tail": func(b []byte) []byte {
			// Cut exactly at the end of the last entry frame: the index is
			// gone entirely, no partial frame bytes remain.
			r, err := OpenReader(bytes.NewReader(b), int64(len(b)))
			if err != nil {
				t.Fatal(err)
			}
			last := r.entries[len(r.entries)-1]
			return b[:last.payloadOff+last.length]
		},
		"torn final frame mid-crc": func(b []byte) []byte {
			// Cut inside the CRC field of the final frame's header: the
			// frame has its magic, name and length, but the checksum (and
			// payload) are torn off.
			r, err := OpenReader(bytes.NewReader(b), int64(len(b)))
			if err != nil {
				t.Fatal(err)
			}
			last := r.entries[len(r.entries)-1]
			return b[:last.payloadOff-2]
		},
		"duplicate frame after retried append": func(b []byte) []byte {
			// Simulate a retried append that never rolled back: the same
			// frame appears twice back to back. First intact copy must win
			// and the result must still be stable under re-recovery.
			r, err := OpenReader(bytes.NewReader(b), int64(len(b)))
			if err != nil {
				t.Fatal(err)
			}
			e := r.entries[r.byName["phis"]]
			frame := b[e.offset : e.payloadOff+e.length]
			cut := b[:len(b)-40] // also tear the index so recovery engages
			return append(append([]byte(nil), cut...), frame...)
		},
	}

	for label, damageFn := range damage {
		t.Run(label, func(t *testing.T) {
			x := damageFn(append([]byte(nil), raw...))
			r1, err := Recover(bytes.NewReader(x), int64(len(x)))
			if err != nil {
				t.Fatalf("first recovery: %v", err)
			}
			if r1.Len() == 0 {
				t.Fatal("first recovery salvaged nothing")
			}
			for _, name := range r1.Names() {
				p, err := r1.Payload(name)
				if err != nil || !bytes.Equal(p, fields[name]) {
					t.Fatalf("first recovery field %q wrong: %v", name, err)
				}
			}
			once := repack(t, r1)
			r2, err := Recover(bytes.NewReader(once), int64(len(once)))
			if err != nil {
				t.Fatalf("second recovery: %v", err)
			}
			twice := repack(t, r2)
			if !bytes.Equal(once, twice) {
				t.Fatalf("recovery not idempotent: repacked forms differ (%d vs %d bytes)", len(once), len(twice))
			}
		})
	}
}

// TestRecoverDurableExcludesUncommitted: a fully written entry frame
// whose commit record is torn must NOT be restored by RecoverDurable
// (it never committed), while plain Recover may still salvage it — the
// two recovery strictness levels documented in FORMAT.md.
func TestRecoverDurableExcludesUncommitted(t *testing.T) {
	fsys := fault.NewMemFS()
	names, fields := durableFields()
	dw, err := NewDurableWriter(fsys, "a.dpza")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names[:2] {
		if err := dw.Append(name, fields[name]); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := fsys.ReadFile("a.dpza")
	if err != nil {
		t.Fatal(err)
	}
	// Hand-append a complete, CRC-valid frame with no commit record — a
	// crash between the frame write and the commit sync.
	payload := fields[names[2]]
	frame := append([]byte(nil), entryMagic...)
	frame = append(frame, byte(len(names[2])), 0)
	frame = append(frame, names[2]...)
	frame = integrity.AppendFrame(frame, payload)
	raw = append(raw, frame...)

	rd, err := RecoverDurable(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if got := rd.Names(); !reflect.DeepEqual(got, names[:2]) {
		t.Fatalf("RecoverDurable names %v, want committed prefix %v", got, names[:2])
	}
	rec, err := Recover(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.Names(); !reflect.DeepEqual(got, names[:3]) {
		t.Fatalf("plain Recover names %v, want %v (salvages the uncommitted frame)", got, names[:3])
	}
}
