package archive

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

func buildArchive(t *testing.T, fields map[string][]byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic order.
	for i := 0; i < len(fields); i++ {
		name := fmt.Sprintf("field%02d", i)
		if err := w.Append(name, fields[name]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	fields := map[string][]byte{}
	for i := 0; i < 5; i++ {
		b := make([]byte, rng.Intn(5000))
		rng.Read(b)
		fields[fmt.Sprintf("field%02d", i)] = b
	}
	raw := buildArchive(t, fields)
	r, err := OpenReader(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 5 {
		t.Fatalf("Len = %d", r.Len())
	}
	names := r.Names()
	for i, n := range names {
		if n != fmt.Sprintf("field%02d", i) {
			t.Fatalf("names out of order: %v", names)
		}
		got, err := r.Payload(n)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, fields[n]) {
			t.Fatalf("payload %s differs", n)
		}
	}
}

func TestEmptyArchive(t *testing.T) {
	raw := buildArchive(t, nil)
	r, err := OpenReader(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d", r.Len())
	}
	if _, err := r.Payload("missing"); err == nil {
		t.Fatal("expected error for missing field")
	}
}

func TestWriterValidation(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append("", []byte("x")); err == nil {
		t.Fatal("expected error for empty name")
	}
	if err := w.Append("a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append("a", []byte("y")); err == nil {
		t.Fatal("expected duplicate error")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append("b", nil); err == nil {
		t.Fatal("expected closed error")
	}
	if err := w.Close(); err == nil {
		t.Fatal("expected double-close error")
	}
}

func TestOpenRejectsCorrupt(t *testing.T) {
	raw := buildArchive(t, map[string][]byte{"field00": []byte("hello")})
	if _, err := OpenReader(bytes.NewReader(raw[:3]), 3); err == nil {
		t.Fatal("expected too-short error")
	}
	bad := append([]byte{}, raw...)
	bad[0] = 'X'
	if _, err := OpenReader(bytes.NewReader(bad), int64(len(bad))); err == nil {
		t.Fatal("expected magic error")
	}
	tail := append([]byte{}, raw...)
	tail[len(tail)-1] = 'X'
	if _, err := OpenReader(bytes.NewReader(tail), int64(len(tail))); err == nil {
		t.Fatal("expected footer error")
	}
	// Corrupt index length.
	lenPos := len(raw) - len(magic) - 8
	big := append([]byte{}, raw...)
	big[lenPos] = 0xFF
	big[lenPos+1] = 0xFF
	if _, err := OpenReader(bytes.NewReader(big), int64(len(big))); err == nil {
		t.Fatal("expected index-size error")
	}
}

func TestLargeNames(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	long := make([]byte, 70000)
	if err := w.Append(string(long), []byte("x")); err == nil {
		t.Fatal("expected error for oversized name")
	}
}
