package zfp

import (
	"testing"

	"dpz/internal/dataset"
)

// FuzzDecompress drives the ZFP block decoder with arbitrary bytes: never
// panic; accepted output must match the declared dims.
func FuzzDecompress(f *testing.F) {
	iso := dataset.Isotropic(16, 1)
	c, err := Compress(iso.Data, iso.Dims, Params{Mode: FixedPrecision, Precision: 12})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(c.Bytes)
	f.Add([]byte{})
	f.Add([]byte("ZFG1"))
	half := make([]byte, len(c.Bytes)/2)
	copy(half, c.Bytes)
	f.Add(half)

	f.Fuzz(func(t *testing.T, buf []byte) {
		out, dims, err := Decompress(buf)
		if err != nil {
			return
		}
		total := 1
		for _, d := range dims {
			total *= d
		}
		if total != len(out) {
			t.Fatalf("accepted stream with inconsistent shape")
		}
	})
}
