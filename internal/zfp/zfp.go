// Package zfp implements a transform-based lossy compressor in the style
// of ZFP (Lindstrom, TVCG'14), the paper's second comparator. Data is
// partitioned into 4^d blocks; each block is aligned to a common exponent
// (block floating point), decorrelated with ZFP's reversible integer
// lifting transform, reordered by total sequency, converted to negabinary,
// and entropy-coded with an embedded group-tested bit-plane coder. Two
// modes are supported: fixed precision (bit planes per block) and fixed
// accuracy (absolute error tolerance).
package zfp

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"dpz/internal/bits"
)

// q is the fixed-point fraction width: block values are scaled to
// integers of magnitude < 2^q before the transform. The lifting transform
// grows magnitudes by < 2^2 per dimension, so 2^(q+6) < 2^62 keeps 3-D
// blocks inside int64.
const q = 44

// intprec is the number of encodable bit planes per block.
const intprec = 52

// negamask converts between two's complement and negabinary.
const negamask = 0xaaaaaaaaaaaaaaaa

// Mode selects the rate-control mode.
type Mode int

const (
	// FixedAccuracy bounds the absolute reconstruction error per value.
	FixedAccuracy Mode = iota
	// FixedPrecision encodes a fixed number of bit planes per block.
	FixedPrecision
)

// Params configures compression.
type Params struct {
	Mode Mode
	// Tolerance is the absolute error bound for FixedAccuracy (> 0).
	Tolerance float64
	// Precision is the bit-plane count for FixedPrecision (1..intprec).
	Precision int
}

// Compressed carries the encoded stream and accounting.
type Compressed struct {
	Bytes     []byte
	OrigBytes int
	Ratio     float64
}

// Compress encodes data with 1-3 dimensions.
func Compress(data []float64, dims []int, p Params) (*Compressed, error) {
	if err := checkDims(data, dims); err != nil {
		return nil, err
	}
	switch p.Mode {
	case FixedAccuracy:
		if p.Tolerance <= 0 || math.IsNaN(p.Tolerance) || math.IsInf(p.Tolerance, 0) {
			return nil, fmt.Errorf("zfp: tolerance must be positive and finite, got %v", p.Tolerance)
		}
	case FixedPrecision:
		if p.Precision < 1 || p.Precision > intprec {
			return nil, fmt.Errorf("zfp: precision %d out of [1,%d]", p.Precision, intprec)
		}
	default:
		return nil, fmt.Errorf("zfp: invalid mode %d", int(p.Mode))
	}
	for _, v := range data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, errors.New("zfp: NaN/Inf input unsupported")
		}
	}

	d := len(dims)
	size := 1 << (2 * d) // 4^d
	perm := sequencyPerm(d)
	w := bits.NewWriter()
	block := make([]float64, size)
	iblock := make([]int64, size)
	ublock := make([]uint64, size)

	forEachBlock(dims, func(origin []int) {
		gather(data, dims, origin, block)
		encodeBlock(w, block, iblock, ublock, perm, d, p)
	})

	// Header: magic, mode, param, ndims, dims.
	var out bytes.Buffer
	out.WriteString("ZFG1")
	out.WriteByte(uint8(p.Mode))
	var b8 [8]byte
	if p.Mode == FixedAccuracy {
		binary.LittleEndian.PutUint64(b8[:], math.Float64bits(p.Tolerance))
	} else {
		binary.LittleEndian.PutUint64(b8[:], uint64(p.Precision))
	}
	out.Write(b8[:])
	out.WriteByte(uint8(d))
	for _, dim := range dims {
		binary.LittleEndian.PutUint64(b8[:], uint64(dim))
		out.Write(b8[:])
	}
	payload := w.Bytes()
	binary.LittleEndian.PutUint64(b8[:], uint64(len(payload)))
	out.Write(b8[:])
	out.Write(payload)

	c := &Compressed{Bytes: out.Bytes(), OrigBytes: 4 * len(data)}
	c.Ratio = float64(c.OrigBytes) / float64(len(c.Bytes))
	return c, nil
}

// Decompress reverses Compress.
func Decompress(buf []byte) ([]float64, []int, error) {
	if len(buf) < 14 || string(buf[:4]) != "ZFG1" {
		return nil, nil, errors.New("zfp: bad magic")
	}
	p := Params{Mode: Mode(buf[4])}
	switch p.Mode {
	case FixedAccuracy:
		p.Tolerance = math.Float64frombits(binary.LittleEndian.Uint64(buf[5:]))
	case FixedPrecision:
		p.Precision = int(binary.LittleEndian.Uint64(buf[5:]))
	default:
		return nil, nil, fmt.Errorf("zfp: invalid mode %d", int(p.Mode))
	}
	d := int(buf[13])
	if d < 1 || d > 3 {
		return nil, nil, fmt.Errorf("zfp: invalid dimensionality %d", d)
	}
	pos := 14
	if len(buf) < pos+8*d+8 {
		return nil, nil, errors.New("zfp: truncated header")
	}
	dims := make([]int, d)
	total := 1
	for i := range dims {
		dims[i] = int(binary.LittleEndian.Uint64(buf[pos:]))
		pos += 8
		if dims[i] <= 0 || dims[i] > 1<<28 {
			return nil, nil, errors.New("zfp: corrupt dims")
		}
		total *= dims[i]
		if total > 1<<31 {
			return nil, nil, errors.New("zfp: corrupt dims")
		}
	}
	plen := int(binary.LittleEndian.Uint64(buf[pos:]))
	pos += 8
	if plen < 0 || pos+plen != len(buf) {
		return nil, nil, errors.New("zfp: payload length mismatch")
	}
	// Every block consumes at least one bit, so dims implying more blocks
	// than the payload has bits are corruption — and would otherwise size
	// the output buffer from attacker-controlled values.
	nblocks := 1
	for _, dim := range dims {
		nblocks *= (dim + 3) / 4
	}
	if nblocks > 8*plen+8 {
		return nil, nil, fmt.Errorf("zfp: %d blocks exceed payload of %d bytes", nblocks, plen)
	}
	r := bits.NewReader(buf[pos:])

	size := 1 << (2 * d)
	perm := sequencyPerm(d)
	out := make([]float64, total)
	block := make([]float64, size)
	iblock := make([]int64, size)
	ublock := make([]uint64, size)
	var derr error
	forEachBlock(dims, func(origin []int) {
		if derr != nil {
			return
		}
		if err := decodeBlock(r, block, iblock, ublock, perm, d, p); err != nil {
			derr = err
			return
		}
		scatter(out, dims, origin, block)
	})
	if derr != nil {
		return nil, nil, derr
	}
	return out, dims, nil
}

// encodeBlock encodes one 4^d block.
func encodeBlock(w *bits.Writer, block []float64, iblock []int64, ublock []uint64, perm []int, d int, p Params) {
	size := len(block)
	maxAbs := 0.0
	for _, v := range block {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		w.WriteBit(0)
		return
	}
	w.WriteBit(1)
	_, e := math.Frexp(maxAbs) // maxAbs = f·2^e, f ∈ [0.5,1) ⇒ |v| < 2^e
	w.WriteBits(uint64(e+16384), 16)

	scale := math.Ldexp(1, q-e)
	for i, v := range block {
		iblock[i] = int64(math.Round(v * scale))
	}
	fwdTransform(iblock, d)
	for j := range ublock {
		ublock[j] = (uint64(iblock[perm[j]]) + negamask) ^ negamask
	}
	kmin := planeFloor(p, e, d)
	encodePlanes(w, ublock, size, kmin)
}

// decodeBlock decodes one block into block.
func decodeBlock(r *bits.Reader, block []float64, iblock []int64, ublock []uint64, perm []int, d int, p Params) error {
	nz, err := r.ReadBit()
	if err != nil {
		return fmt.Errorf("zfp: %w", err)
	}
	if nz == 0 {
		for i := range block {
			block[i] = 0
		}
		return nil
	}
	eb, err := r.ReadBits(16)
	if err != nil {
		return fmt.Errorf("zfp: %w", err)
	}
	e := int(eb) - 16384
	if e < -16384 || e > 16384 {
		return errors.New("zfp: corrupt block exponent")
	}
	kmin := planeFloor(p, e, d)
	if err := decodePlanes(r, ublock, len(block), kmin); err != nil {
		return err
	}
	for j := range ublock {
		iblock[perm[j]] = int64((ublock[j] ^ negamask) - negamask)
	}
	invTransform(iblock, d)
	scale := math.Ldexp(1, e-q)
	for i := range block {
		block[i] = float64(iblock[i]) * scale
	}
	return nil
}

// planeFloor returns the lowest encoded bit plane for a block with max
// exponent e: FixedPrecision cuts a fixed count from the top; FixedAccuracy
// keeps planes whose unit value exceeds tolerance/2^(d+2) (the transform
// error-growth margin).
func planeFloor(p Params, e, d int) int {
	if p.Mode == FixedPrecision {
		k := intprec - p.Precision
		if k < 0 {
			return 0
		}
		return k
	}
	// One integer unit at plane k corresponds to 2^(e-q)·2^k in value.
	// Keep k while 2^(e-q+k) > tol/2^(d+2), i.e. cut below
	// k = log2(tol) - (e-q) - (d+2).
	k := int(math.Floor(math.Log2(p.Tolerance))) - (e - q) - (d + 2)
	if k < 0 {
		return 0
	}
	if k > intprec {
		return intprec
	}
	return k
}

// encodePlanes writes the embedded group-tested bit planes of ublock from
// intprec-1 down to kmin (ZFP's encode_ints scheme): per plane, the bits of
// the n already-significant values verbatim, then a unary-coded scan for
// newly significant values.
func encodePlanes(w *bits.Writer, u []uint64, size, kmin int) {
	n := 0
	for k := intprec - 1; k >= kmin; k-- {
		var x uint64
		for i := 0; i < size; i++ {
			x |= ((u[i] >> uint(k)) & 1) << uint(i)
		}
		m := n
		if m > size {
			m = size
		}
		for j := 0; j < m; j++ {
			w.WriteBit(uint(x & 1))
			x >>= 1
		}
		for n < size {
			if x == 0 {
				w.WriteBit(0)
				break
			}
			w.WriteBit(1)
			for n < size-1 {
				b := uint(x & 1)
				w.WriteBit(b)
				if b != 0 {
					break
				}
				x >>= 1
				n++
			}
			x >>= 1
			n++
		}
	}
}

// decodePlanes mirrors encodePlanes, filling ublock.
func decodePlanes(r *bits.Reader, u []uint64, size, kmin int) error {
	for i := 0; i < size; i++ {
		u[i] = 0
	}
	n := 0
	for k := intprec - 1; k >= kmin; k-- {
		var x uint64
		m := n
		if m > size {
			m = size
		}
		for j := 0; j < m; j++ {
			b, err := r.ReadBit()
			if err != nil {
				return fmt.Errorf("zfp: %w", err)
			}
			x |= uint64(b) << uint(j)
		}
		for n < size {
			g, err := r.ReadBit()
			if err != nil {
				return fmt.Errorf("zfp: %w", err)
			}
			if g == 0 {
				break
			}
			for n < size-1 {
				b, err := r.ReadBit()
				if err != nil {
					return fmt.Errorf("zfp: %w", err)
				}
				if b != 0 {
					break
				}
				n++
			}
			x |= uint64(1) << uint(n)
			n++
		}
		for i := 0; x != 0; i, x = i+1, x>>1 {
			u[i] |= (x & 1) << uint(k)
		}
	}
	return nil
}

// fwdLift applies ZFP's forward lifting to 4 values at stride s.
func fwdLift(p []int64, off, s int) {
	x, y, z, w := p[off], p[off+s], p[off+2*s], p[off+3*s]
	x += w
	x >>= 1
	w -= x
	z += y
	z >>= 1
	y -= z
	x += z
	x >>= 1
	z -= x
	w += y
	w >>= 1
	y -= w
	w += y >> 1
	y -= w >> 1
	p[off], p[off+s], p[off+2*s], p[off+3*s] = x, y, z, w
}

// invLift inverts fwdLift.
func invLift(p []int64, off, s int) {
	x, y, z, w := p[off], p[off+s], p[off+2*s], p[off+3*s]
	y += w >> 1
	w -= y >> 1
	y += w
	w <<= 1
	w -= y
	z += x
	x <<= 1
	x -= z
	y += z
	z <<= 1
	z -= y
	w += x
	x <<= 1
	x -= w
	p[off], p[off+s], p[off+2*s], p[off+3*s] = x, y, z, w
}

// fwdTransform decorrelates a 4^d block along every dimension.
func fwdTransform(b []int64, d int) {
	switch d {
	case 1:
		fwdLift(b, 0, 1)
	case 2:
		for y := 0; y < 4; y++ {
			fwdLift(b, 4*y, 1) // rows
		}
		for x := 0; x < 4; x++ {
			fwdLift(b, x, 4) // columns
		}
	default:
		for z := 0; z < 4; z++ {
			for y := 0; y < 4; y++ {
				fwdLift(b, 16*z+4*y, 1)
			}
		}
		for z := 0; z < 4; z++ {
			for x := 0; x < 4; x++ {
				fwdLift(b, 16*z+x, 4)
			}
		}
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				fwdLift(b, 4*y+x, 16)
			}
		}
	}
}

// invTransform inverts fwdTransform (reverse dimension order).
func invTransform(b []int64, d int) {
	switch d {
	case 1:
		invLift(b, 0, 1)
	case 2:
		for x := 0; x < 4; x++ {
			invLift(b, x, 4)
		}
		for y := 0; y < 4; y++ {
			invLift(b, 4*y, 1)
		}
	default:
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				invLift(b, 4*y+x, 16)
			}
		}
		for z := 0; z < 4; z++ {
			for x := 0; x < 4; x++ {
				invLift(b, 16*z+x, 4)
			}
		}
		for z := 0; z < 4; z++ {
			for y := 0; y < 4; y++ {
				invLift(b, 16*z+4*y, 1)
			}
		}
	}
}

// sequencyPerm returns the coefficient ordering by total sequency (sum of
// per-dimension frequencies), low frequencies first, ties broken by linear
// index — the order that makes truncated bit planes drop the least energy.
func sequencyPerm(d int) []int {
	size := 1 << (2 * d)
	perm := make([]int, size)
	for i := range perm {
		perm[i] = i
	}
	key := func(i int) int {
		switch d {
		case 1:
			return i
		case 2:
			return i%4 + i/4
		default:
			return i%4 + (i/4)%4 + i/16
		}
	}
	sort.SliceStable(perm, func(a, b int) bool { return key(perm[a]) < key(perm[b]) })
	return perm
}

// forEachBlock invokes fn with the origin of every 4^d block covering dims.
func forEachBlock(dims []int, fn func(origin []int)) {
	switch len(dims) {
	case 1:
		for x := 0; x < dims[0]; x += 4 {
			fn([]int{x})
		}
	case 2:
		for y := 0; y < dims[0]; y += 4 {
			for x := 0; x < dims[1]; x += 4 {
				fn([]int{y, x})
			}
		}
	default:
		for z := 0; z < dims[0]; z += 4 {
			for y := 0; y < dims[1]; y += 4 {
				for x := 0; x < dims[2]; x += 4 {
					fn([]int{z, y, x})
				}
			}
		}
	}
}

// gather copies a 4^d block at origin into block, clamping reads at the
// array edge (edge replication).
func gather(data []float64, dims []int, origin []int, block []float64) {
	clamp := func(v, hi int) int {
		if v >= hi {
			return hi - 1
		}
		return v
	}
	switch len(dims) {
	case 1:
		for i := 0; i < 4; i++ {
			block[i] = data[clamp(origin[0]+i, dims[0])]
		}
	case 2:
		for y := 0; y < 4; y++ {
			ry := clamp(origin[0]+y, dims[0])
			for x := 0; x < 4; x++ {
				block[4*y+x] = data[ry*dims[1]+clamp(origin[1]+x, dims[1])]
			}
		}
	default:
		plane := dims[1] * dims[2]
		for z := 0; z < 4; z++ {
			rz := clamp(origin[0]+z, dims[0])
			for y := 0; y < 4; y++ {
				ry := clamp(origin[1]+y, dims[1])
				for x := 0; x < 4; x++ {
					block[16*z+4*y+x] = data[rz*plane+ry*dims[2]+clamp(origin[2]+x, dims[2])]
				}
			}
		}
	}
}

// scatter writes a block back, skipping padded positions.
func scatter(out []float64, dims []int, origin []int, block []float64) {
	switch len(dims) {
	case 1:
		for i := 0; i < 4 && origin[0]+i < dims[0]; i++ {
			out[origin[0]+i] = block[i]
		}
	case 2:
		for y := 0; y < 4 && origin[0]+y < dims[0]; y++ {
			for x := 0; x < 4 && origin[1]+x < dims[1]; x++ {
				out[(origin[0]+y)*dims[1]+origin[1]+x] = block[4*y+x]
			}
		}
	default:
		plane := dims[1] * dims[2]
		for z := 0; z < 4 && origin[0]+z < dims[0]; z++ {
			for y := 0; y < 4 && origin[1]+y < dims[1]; y++ {
				for x := 0; x < 4 && origin[2]+x < dims[2]; x++ {
					out[(origin[0]+z)*plane+(origin[1]+y)*dims[2]+origin[2]+x] = block[16*z+4*y+x]
				}
			}
		}
	}
}

func checkDims(data []float64, dims []int) error {
	if len(dims) < 1 || len(dims) > 3 {
		return fmt.Errorf("zfp: %d dimensions unsupported (1-3)", len(dims))
	}
	total := 1
	for _, d := range dims {
		if d <= 0 {
			return fmt.Errorf("zfp: non-positive dimension in %v", dims)
		}
		total *= d
	}
	if total != len(data) {
		return fmt.Errorf("zfp: dims %v describe %d values, data has %d", dims, total, len(data))
	}
	return nil
}
