package zfp

import "dpz/internal/bits"

// testWriter pairs a bit writer with a reader over its output.
type testWriter struct {
	w *bits.Writer
}

func newTestWriter() *testWriter { return &testWriter{w: bits.NewWriter()} }

func (t *testWriter) reader() *bits.Reader { return bits.NewReader(t.w.Bytes()) }
