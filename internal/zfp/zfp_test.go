package zfp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dpz/internal/dataset"
	"dpz/internal/stats"
)

func roundTrip(t *testing.T, data []float64, dims []int, p Params) ([]float64, *Compressed) {
	t.Helper()
	c, err := Compress(data, dims, p)
	if err != nil {
		t.Fatalf("compress: %v", err)
	}
	out, gotDims, err := Decompress(c.Bytes)
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	for i := range dims {
		if gotDims[i] != dims[i] {
			t.Fatalf("dims %v, want %v", gotDims, dims)
		}
	}
	return out, c
}

// ZFP's lifting uses truncating >>1 steps, so the forward/inverse pair is
// near-lossless at the integer level: a few units of round-off per lift,
// negligible at the 2^(e−q) value scale against any realistic tolerance.

func TestLiftRoundTripNearLossless(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		vals := make([]int64, 4)
		orig := make([]int64, 4)
		for i := range vals {
			vals[i] = int64(rng.Intn(1<<40)) - 1<<39
			orig[i] = vals[i]
		}
		fwdLift(vals, 0, 1)
		invLift(vals, 0, 1)
		for i := range vals {
			if d := vals[i] - orig[i]; d > 4 || d < -4 {
				t.Fatalf("trial %d: lift round-off %d units: %v vs %v", trial, d, vals, orig)
			}
		}
	}
}

func TestTransformRoundTripNearLossless(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for _, d := range []int{1, 2, 3} {
		size := 1 << (2 * d)
		b := make([]int64, size)
		orig := make([]int64, size)
		for i := range b {
			b[i] = int64(rng.Intn(1<<40)) - 1<<39
			orig[i] = b[i]
		}
		fwdTransform(b, d)
		invTransform(b, d)
		for i := range b {
			if diff := b[i] - orig[i]; diff > 16 || diff < -16 {
				t.Fatalf("d=%d: transform round-off %d units at %d", d, diff, i)
			}
		}
	}
}

func TestNegabinaryRoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 42, -42, 1 << 40, -(1 << 40), math.MaxInt32, math.MinInt32} {
		u := (uint64(v) + negamask) ^ negamask
		back := int64((u ^ negamask) - negamask)
		if back != v {
			t.Fatalf("negabinary round trip: %d -> %d", v, back)
		}
	}
}

func TestSequencyPerm(t *testing.T) {
	for _, d := range []int{1, 2, 3} {
		perm := sequencyPerm(d)
		size := 1 << (2 * d)
		if len(perm) != size {
			t.Fatalf("d=%d: perm length %d", d, len(perm))
		}
		seen := make([]bool, size)
		for _, p := range perm {
			if p < 0 || p >= size || seen[p] {
				t.Fatalf("d=%d: invalid permutation %v", d, perm)
			}
			seen[p] = true
		}
	}
	// 2-D: DC coefficient (0,0) must come first, (3,3) last.
	p2 := sequencyPerm(2)
	if p2[0] != 0 || p2[15] != 15 {
		t.Fatalf("2-D sequency order wrong: %v", p2)
	}
}

func TestPlaneCodingRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		size := []int{4, 16, 64}[r.Intn(3)]
		u := make([]uint64, size)
		for i := range u {
			u[i] = r.Uint64() & ((1 << intprec) - 1)
		}
		kmin := r.Intn(4) * 0 // full-depth round trip must be exact
		w := newTestWriter()
		encodePlanes(w.w, u, size, kmin)
		got := make([]uint64, size)
		if err := decodePlanes(w.reader(), got, size, kmin); err != nil {
			return false
		}
		for i := range u {
			if got[i] != u[i] {
				return false
			}
		}
		return true
	}
	_ = rng
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPlaneCodingTruncation(t *testing.T) {
	// With kmin > 0, decoded values must match the originals with the low
	// kmin bits zeroed (negabinary truncation towards the encoded
	// planes).
	u := []uint64{0x3ffff, 0x12345, 0, 0xfffff}
	for _, kmin := range []int{4, 8, 16} {
		w := newTestWriter()
		encodePlanes(w.w, u, len(u), kmin)
		got := make([]uint64, len(u))
		if err := decodePlanes(w.reader(), got, len(u), kmin); err != nil {
			t.Fatal(err)
		}
		for i := range u {
			want := u[i] &^ ((1 << uint(kmin)) - 1)
			if got[i] != want {
				t.Fatalf("kmin=%d val %d: got %x, want %x", kmin, i, got[i], want)
			}
		}
	}
}

func TestFixedAccuracyBound(t *testing.T) {
	fields := []*dataset.Field{
		dataset.Isotropic(20, 34),
		dataset.CESM("FLDSC", 40, 80, 35),
		dataset.HACCX(4000, 36),
	}
	for _, f := range fields {
		r := stats.Range(f.Data)
		for _, tolFrac := range []float64{1e-2, 1e-4} {
			tol := tolFrac * r
			out, _ := roundTrip(t, f.Data, f.Dims, Params{Mode: FixedAccuracy, Tolerance: tol})
			if maxErr := stats.MaxAbsError(f.Data, out); maxErr > tol {
				t.Fatalf("%s tol=%g: max error %g exceeds tolerance", f.Name, tol, maxErr)
			}
		}
	}
}

func TestFixedPrecisionMonotone(t *testing.T) {
	f := dataset.Isotropic(16, 37)
	var prevPSNR float64 = -1
	var prevCR = math.Inf(1)
	for _, prec := range []int{8, 16, 28} {
		out, c := roundTrip(t, f.Data, f.Dims, Params{Mode: FixedPrecision, Precision: prec})
		psnr := stats.PSNR(f.Data, out)
		if psnr < prevPSNR {
			t.Fatalf("PSNR fell from %.1f to %.1f at precision %d", prevPSNR, psnr, prec)
		}
		if c.Ratio > prevCR {
			t.Fatalf("CR rose from %.2f to %.2f at precision %d", prevCR, c.Ratio, prec)
		}
		prevPSNR, prevCR = psnr, c.Ratio
	}
}

func TestZeroBlocks(t *testing.T) {
	data := make([]float64, 64*64)
	out, c := roundTrip(t, data, []int{64, 64}, Params{Mode: FixedAccuracy, Tolerance: 1e-6})
	for i, v := range out {
		if v != 0 {
			t.Fatalf("zero data decoded as %v at %d", v, i)
		}
	}
	// All-zero blocks cost ~1 bit each: enormous ratio.
	if c.Ratio < 100 {
		t.Fatalf("zero data CR = %.1f", c.Ratio)
	}
}

func TestNonMultipleOf4Dims(t *testing.T) {
	f := dataset.CESM("CLDHGH", 30, 55, 38)
	out, _ := roundTrip(t, f.Data, f.Dims, Params{Mode: FixedAccuracy, Tolerance: 1e-3})
	if maxErr := stats.MaxAbsError(f.Data, out); maxErr > 1e-3 {
		t.Fatalf("padded edges violate tolerance: %g", maxErr)
	}
}

func Test1DAnd3D(t *testing.T) {
	h := dataset.HACCVX(1000, 39)
	out, _ := roundTrip(t, h.Data, h.Dims, Params{Mode: FixedAccuracy, Tolerance: 1.0})
	if maxErr := stats.MaxAbsError(h.Data, out); maxErr > 1.0 {
		t.Fatalf("1-D error %g", maxErr)
	}
	iso := dataset.Isotropic(18, 40) // 18 not a multiple of 4
	out3, _ := roundTrip(t, iso.Data, iso.Dims, Params{Mode: FixedAccuracy, Tolerance: 1e-2})
	if maxErr := stats.MaxAbsError(iso.Data, out3); maxErr > 1e-2 {
		t.Fatalf("3-D error %g", maxErr)
	}
}

func TestValidation(t *testing.T) {
	data := make([]float64, 16)
	if _, err := Compress(data, []int{4, 4}, Params{Mode: FixedAccuracy, Tolerance: 0}); err == nil {
		t.Fatal("expected tolerance error")
	}
	if _, err := Compress(data, []int{4, 4}, Params{Mode: FixedPrecision, Precision: 0}); err == nil {
		t.Fatal("expected precision error")
	}
	if _, err := Compress(data, []int{4, 4}, Params{Mode: Mode(9)}); err == nil {
		t.Fatal("expected mode error")
	}
	if _, err := Compress(data, []int{5, 5}, Params{Mode: FixedPrecision, Precision: 8}); err == nil {
		t.Fatal("expected dims mismatch error")
	}
	data[3] = math.NaN()
	if _, err := Compress(data, []int{4, 4}, Params{Mode: FixedPrecision, Precision: 8}); err == nil {
		t.Fatal("expected NaN rejection")
	}
}

func TestDecompressRejectsCorrupt(t *testing.T) {
	if _, _, err := Decompress(nil); err == nil {
		t.Fatal("expected error for empty input")
	}
	f := dataset.CESM("PHIS", 16, 32, 41)
	c, err := Compress(f.Data, f.Dims, Params{Mode: FixedPrecision, Precision: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Decompress(c.Bytes[:len(c.Bytes)-3]); err == nil {
		t.Fatal("expected error for truncated stream")
	}
	bad := make([]byte, len(c.Bytes))
	copy(bad, c.Bytes)
	bad[4] = 7 // invalid mode
	if _, _, err := Decompress(bad); err == nil {
		t.Fatal("expected error for invalid mode")
	}
}
