// Package sz implements a prediction-based error-bounded lossy compressor
// in the style of SZ (Di & Cappello, IPDPS'16; Tao et al., IPDPS'17), the
// paper's first comparator: Lorenzo prediction in 1-3 dimensions,
// linear-scaling quantization of the prediction residual into 2^16 bins,
// canonical Huffman coding of the bin indices, and a zlib pass over the
// whole payload. The configured absolute error bound is honored exactly
// for every value.
package sz

import (
	"bytes"
	"compress/zlib"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"dpz/internal/huffman"
)

// radius is the quantization code radius: codes live in
// [-radius+1, radius-1], stored shifted by +radius; 0 marks an
// unpredictable (literal) value.
const radius = 1 << 15

// Params configures compression.
type Params struct {
	// ErrorBound is the absolute per-value error bound (> 0).
	ErrorBound float64
	// Relative, when set, interprets ErrorBound as a fraction of the
	// data's value range (the common SZ usage, e.g. 1e-3 of range).
	Relative bool
}

// Compressed carries the encoded stream and accounting.
type Compressed struct {
	Bytes      []byte
	OrigBytes  int // 4 bytes/value basis
	Literals   int // unpredictable values
	AbsBound   float64
	Ratio      float64
	HuffBytes  int // Huffman stream size before zlib
	TotalRaw   int // payload before zlib
	FinalBytes int
}

// Compress encodes data with the given dims (1, 2 or 3 dimensions).
func Compress(data []float64, dims []int, p Params) (*Compressed, error) {
	if err := checkDims(data, dims); err != nil {
		return nil, err
	}
	if p.ErrorBound <= 0 || math.IsNaN(p.ErrorBound) || math.IsInf(p.ErrorBound, 0) {
		return nil, fmt.Errorf("sz: error bound must be positive and finite, got %v", p.ErrorBound)
	}
	eb := p.ErrorBound
	if p.Relative {
		eb *= valueRange(data)
		if eb == 0 {
			eb = p.ErrorBound // constant data: any positive bound works
		}
	}

	codes := make([]uint16, len(data))
	var literals []float64
	recon := make([]float64, len(data)) // decompressor-visible values
	predict := newPredictor(dims, recon)

	twoEB := 2 * eb
	for i := range data {
		pred := predict(i)
		diff := data[i] - pred
		q := math.Round(diff / twoEB)
		if math.Abs(q) < radius-1 && !math.IsNaN(diff) {
			dec := pred + q*twoEB
			// Guard against floating-point round-off pushing the
			// reconstruction outside the bound.
			if math.Abs(dec-data[i]) <= eb {
				codes[i] = uint16(int(q) + radius)
				recon[i] = dec
				continue
			}
		}
		codes[i] = 0
		literals = append(literals, data[i])
		recon[i] = data[i]
	}

	huff := huffman.Encode(codes)

	// Payload: eb f64 | ndims u8 | dims u64... | nlit u64 | literals f64...
	// | huffman stream; the whole payload is zlib'd.
	var raw bytes.Buffer
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], math.Float64bits(eb))
	raw.Write(b8[:])
	raw.WriteByte(uint8(len(dims)))
	for _, d := range dims {
		binary.LittleEndian.PutUint64(b8[:], uint64(d))
		raw.Write(b8[:])
	}
	binary.LittleEndian.PutUint64(b8[:], uint64(len(literals)))
	raw.Write(b8[:])
	for _, v := range literals {
		binary.LittleEndian.PutUint64(b8[:], math.Float64bits(v))
		raw.Write(b8[:])
	}
	raw.Write(huff)

	var out bytes.Buffer
	out.WriteString("SZG1")
	zw := zlib.NewWriter(&out)
	if _, err := zw.Write(raw.Bytes()); err != nil {
		return nil, fmt.Errorf("sz: zlib: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("sz: zlib: %w", err)
	}

	c := &Compressed{
		Bytes:      out.Bytes(),
		OrigBytes:  4 * len(data),
		Literals:   len(literals),
		AbsBound:   eb,
		HuffBytes:  len(huff),
		TotalRaw:   raw.Len(),
		FinalBytes: out.Len(),
	}
	c.Ratio = float64(c.OrigBytes) / float64(c.FinalBytes)
	return c, nil
}

// Decompress reverses Compress, returning the values and dims.
func Decompress(buf []byte) ([]float64, []int, error) {
	if len(buf) < 4 || string(buf[:4]) != "SZG1" {
		return nil, nil, errors.New("sz: bad magic")
	}
	zr, err := zlib.NewReader(bytes.NewReader(buf[4:]))
	if err != nil {
		return nil, nil, fmt.Errorf("sz: zlib: %w", err)
	}
	raw, err := io.ReadAll(zr)
	zr.Close()
	if err != nil {
		return nil, nil, fmt.Errorf("sz: zlib: %w", err)
	}
	if len(raw) < 9 {
		return nil, nil, errors.New("sz: truncated payload")
	}
	eb := math.Float64frombits(binary.LittleEndian.Uint64(raw))
	ndims := int(raw[8])
	pos := 9
	if ndims < 1 || ndims > 3 || len(raw) < pos+8*ndims+8 {
		return nil, nil, errors.New("sz: corrupt header")
	}
	dims := make([]int, ndims)
	total := 1
	for i := range dims {
		dims[i] = int(binary.LittleEndian.Uint64(raw[pos:]))
		pos += 8
		if dims[i] <= 0 || dims[i] > 1<<28 {
			return nil, nil, errors.New("sz: corrupt dims")
		}
		total *= dims[i]
		if total > 1<<31 {
			return nil, nil, errors.New("sz: corrupt dims")
		}
	}
	nlit := int(binary.LittleEndian.Uint64(raw[pos:]))
	pos += 8
	if nlit < 0 || len(raw) < pos+8*nlit {
		return nil, nil, errors.New("sz: corrupt literal count")
	}
	literals := make([]float64, nlit)
	for i := range literals {
		literals[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[pos:]))
		pos += 8
	}
	codes, err := huffman.Decode(raw[pos:])
	if err != nil {
		return nil, nil, fmt.Errorf("sz: %w", err)
	}
	if len(codes) != total {
		return nil, nil, fmt.Errorf("sz: %d codes for %d values", len(codes), total)
	}

	out := make([]float64, total)
	predict := newPredictor(dims, out)
	twoEB := 2 * eb
	li := 0
	for i := range out {
		if codes[i] == 0 {
			if li >= len(literals) {
				return nil, nil, errors.New("sz: literal stream exhausted")
			}
			out[i] = literals[li]
			li++
			continue
		}
		q := float64(int(codes[i]) - radius)
		out[i] = predict(i) + q*twoEB
	}
	if li != len(literals) {
		return nil, nil, errors.New("sz: unused literals")
	}
	return out, dims, nil
}

// newPredictor returns the Lorenzo predictor over the reconstructed-value
// buffer recon for the given dimensionality. The predictor for linear
// index i may only read recon entries at indices < i (already decoded).
func newPredictor(dims []int, recon []float64) func(i int) float64 {
	switch len(dims) {
	case 1:
		return func(i int) float64 {
			if i == 0 {
				return 0
			}
			return recon[i-1]
		}
	case 2:
		nx := dims[1]
		return func(i int) float64 {
			r, c := i/nx, i%nx
			switch {
			case r == 0 && c == 0:
				return 0
			case r == 0:
				return recon[i-1]
			case c == 0:
				return recon[i-nx]
			default:
				// 2-D Lorenzo: west + north − northwest.
				return recon[i-1] + recon[i-nx] - recon[i-nx-1]
			}
		}
	default:
		ny, nx := dims[1], dims[2]
		plane := ny * nx
		return func(i int) float64 {
			z := i / plane
			rem := i % plane
			y, x := rem/nx, rem%nx
			var p float64
			// 3-D Lorenzo: the 7-term inclusion-exclusion over the
			// already-decoded corner neighbors.
			if x > 0 {
				p += recon[i-1]
			}
			if y > 0 {
				p += recon[i-nx]
			}
			if z > 0 {
				p += recon[i-plane]
			}
			if x > 0 && y > 0 {
				p -= recon[i-nx-1]
			}
			if x > 0 && z > 0 {
				p -= recon[i-plane-1]
			}
			if y > 0 && z > 0 {
				p -= recon[i-plane-nx]
			}
			if x > 0 && y > 0 && z > 0 {
				p += recon[i-plane-nx-1]
			}
			return p
		}
	}
}

func checkDims(data []float64, dims []int) error {
	if len(dims) < 1 || len(dims) > 3 {
		return fmt.Errorf("sz: %d dimensions unsupported (1-3)", len(dims))
	}
	total := 1
	for _, d := range dims {
		if d <= 0 {
			return fmt.Errorf("sz: non-positive dimension in %v", dims)
		}
		total *= d
	}
	if total != len(data) {
		return fmt.Errorf("sz: dims %v describe %d values, data has %d", dims, total, len(data))
	}
	return nil
}

func valueRange(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	lo, hi := x[0], x[0]
	for _, v := range x[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}
