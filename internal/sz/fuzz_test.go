package sz

import "testing"

// FuzzDecompress feeds arbitrary bytes to the SZ decoder: never panic;
// accepted output must match the declared dims.
func FuzzDecompress(f *testing.F) {
	data := make([]float64, 64)
	for i := range data {
		data[i] = float64(i % 7)
	}
	c, err := Compress(data, []int{8, 8}, Params{ErrorBound: 1e-3})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(c.Bytes)
	f.Add([]byte{})
	f.Add([]byte("SZG1"))
	half := make([]byte, len(c.Bytes)/2)
	copy(half, c.Bytes)
	f.Add(half)

	f.Fuzz(func(t *testing.T, buf []byte) {
		out, dims, err := Decompress(buf)
		if err != nil {
			return
		}
		total := 1
		for _, d := range dims {
			total *= d
		}
		if total != len(out) {
			t.Fatalf("accepted stream with inconsistent shape")
		}
	})
}
