package sz

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dpz/internal/dataset"
	"dpz/internal/stats"
)

func checkBound(t *testing.T, data []float64, dims []int, p Params) *Compressed {
	t.Helper()
	c, err := Compress(data, dims, p)
	if err != nil {
		t.Fatalf("compress: %v", err)
	}
	out, gotDims, err := Decompress(c.Bytes)
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if len(gotDims) != len(dims) {
		t.Fatalf("dims %v, want %v", gotDims, dims)
	}
	for i := range dims {
		if gotDims[i] != dims[i] {
			t.Fatalf("dims %v, want %v", gotDims, dims)
		}
	}
	for i := range data {
		if math.Abs(out[i]-data[i]) > c.AbsBound+1e-12 {
			t.Fatalf("value %d: error %g exceeds bound %g", i, math.Abs(out[i]-data[i]), c.AbsBound)
		}
	}
	return c
}

func TestErrorBound1D(t *testing.T) {
	f := dataset.HACCX(1<<12, 21)
	for _, eb := range []float64{1e-1, 1e-2, 1e-3} {
		checkBound(t, f.Data, f.Dims, Params{ErrorBound: eb})
	}
}

func TestErrorBound2D(t *testing.T) {
	f := dataset.CESM("CLDHGH", 60, 120, 22)
	checkBound(t, f.Data, f.Dims, Params{ErrorBound: 1e-3})
}

func TestErrorBound3D(t *testing.T) {
	f := dataset.Isotropic(16, 23)
	checkBound(t, f.Data, f.Dims, Params{ErrorBound: 1e-2})
}

func TestRelativeBound(t *testing.T) {
	f := dataset.CESM("PHIS", 48, 96, 24)
	c := checkBound(t, f.Data, f.Dims, Params{ErrorBound: 1e-3, Relative: true})
	r := stats.Range(f.Data)
	if math.Abs(c.AbsBound-1e-3*r) > 1e-9*r {
		t.Fatalf("absolute bound %g, want %g", c.AbsBound, 1e-3*r)
	}
}

func TestSmoothDataCompressesWell(t *testing.T) {
	f := dataset.CESM("FLDSC", 90, 180, 25)
	c := checkBound(t, f.Data, f.Dims, Params{ErrorBound: 1e-2, Relative: true})
	if c.Ratio < 8 {
		t.Fatalf("smooth 2-D field CR = %.2f, want > 8", c.Ratio)
	}
	if c.Literals > len(f.Data)/100 {
		t.Fatalf("%d literals on smooth data", c.Literals)
	}
}

func TestLooserBoundHigherRatio(t *testing.T) {
	f := dataset.Isotropic(20, 26)
	tight := checkBound(t, f.Data, f.Dims, Params{ErrorBound: 1e-4, Relative: true})
	loose := checkBound(t, f.Data, f.Dims, Params{ErrorBound: 1e-2, Relative: true})
	if loose.Ratio <= tight.Ratio {
		t.Fatalf("loose CR %.2f not above tight CR %.2f", loose.Ratio, tight.Ratio)
	}
}

func TestRandomDataStillBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	data := make([]float64, 5000)
	for i := range data {
		data[i] = rng.NormFloat64() * 1e6
	}
	checkBound(t, data, []int{5000}, Params{ErrorBound: 1.0})
}

func TestConstantData(t *testing.T) {
	data := make([]float64, 1024)
	for i := range data {
		data[i] = 3.5
	}
	c := checkBound(t, data, []int{32, 32}, Params{ErrorBound: 1e-3, Relative: true})
	if c.Ratio < 20 {
		t.Fatalf("constant data CR = %.2f", c.Ratio)
	}
}

func TestValidation(t *testing.T) {
	data := make([]float64, 10)
	if _, err := Compress(data, []int{3}, Params{ErrorBound: 1e-3}); err == nil {
		t.Fatal("expected dims mismatch error")
	}
	if _, err := Compress(data, []int{10}, Params{ErrorBound: 0}); err == nil {
		t.Fatal("expected bound error")
	}
	if _, err := Compress(data, []int{10}, Params{ErrorBound: math.NaN()}); err == nil {
		t.Fatal("expected NaN bound error")
	}
	if _, err := Compress(data, []int{1, 1, 1, 10}, Params{ErrorBound: 1}); err == nil {
		t.Fatal("expected >3-D error")
	}
	if _, err := Compress(data, []int{-10}, Params{ErrorBound: 1}); err == nil {
		t.Fatal("expected negative dim error")
	}
}

func TestDecompressRejectsCorrupt(t *testing.T) {
	if _, _, err := Decompress(nil); err == nil {
		t.Fatal("expected error for empty input")
	}
	if _, _, err := Decompress([]byte("XXXX....")); err == nil {
		t.Fatal("expected error for bad magic")
	}
	f := dataset.HACCVX(1024, 28)
	c, err := Compress(f.Data, f.Dims, Params{ErrorBound: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Decompress(c.Bytes[:len(c.Bytes)/2]); err == nil {
		t.Fatal("expected error for truncated stream")
	}
}

func TestBoundPropertyRandomShapes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nd := 1 + rng.Intn(3)
		dims := make([]int, nd)
		total := 1
		for i := range dims {
			dims[i] = 2 + rng.Intn(12)
			total *= dims[i]
		}
		data := make([]float64, total)
		// Mixture of smooth and rough.
		for i := range data {
			data[i] = math.Sin(float64(i)/7) + 0.1*rng.NormFloat64()
		}
		eb := math.Pow(10, -1-2*rng.Float64())
		c, err := Compress(data, dims, Params{ErrorBound: eb})
		if err != nil {
			return false
		}
		out, _, err := Decompress(c.Bytes)
		if err != nil {
			return false
		}
		for i := range data {
			if math.Abs(out[i]-data[i]) > eb+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
