package dpz

import "dpz/internal/stats"

// PSNR returns the peak signal-to-noise ratio in dB between the original
// and reconstructed data, using the original's value range as the peak:
// 20·log10(range) − 10·log10(MSE).
func PSNR(orig, recon []float64) float64 { return stats.PSNR(orig, recon) }

// PSNR32 is PSNR for single-precision slices.
func PSNR32(orig, recon []float32) float64 {
	return stats.PSNR(stats.Float32To64(orig), stats.Float32To64(recon))
}

// MSE returns the mean squared error between the slices.
func MSE(orig, recon []float64) float64 { return stats.MSE(orig, recon) }

// MaxAbsError returns the maximum absolute pointwise error.
func MaxAbsError(orig, recon []float64) float64 { return stats.MaxAbsError(orig, recon) }

// MeanRelativeError returns the paper's mean θ: the average absolute error
// normalized by the original data range.
func MeanRelativeError(orig, recon []float64) float64 { return stats.MeanRelError(orig, recon) }

// BitRate converts a compression ratio to bits per value for the given
// uncompressed element width (32 for single precision).
func BitRate(cr float64, elemBits int) float64 { return stats.BitRate(cr, elemBits) }

// CompressionRatio returns originalBytes / compressedBytes.
func CompressionRatio(originalBytes, compressedBytes int) float64 {
	return stats.CompressionRatio(originalBytes, compressedBytes)
}

// SSIM computes the mean structural similarity index between a 2-D field
// and its reconstruction (rows×cols, row-major; 8×8 sliding windows).
func SSIM(orig, recon []float64, rows, cols int) float64 {
	return stats.SSIM(orig, recon, rows, cols)
}
