package dpz_test

import (
	"fmt"

	"dpz"
	"dpz/internal/dataset"
)

// ExampleCompress demonstrates the basic compress → decompress loop.
func ExampleCompress() {
	// A synthetic 120×240 climate field (any []float32 with row-major
	// dims works identically).
	field := dataset.CESM("FLDSC", 120, 240, 7)
	values := make([]float32, len(field.Data))
	for i, v := range field.Data {
		values[i] = float32(v)
	}

	opts := dpz.StrictOptions() // DPZ-s: P = 1e-4, 2-byte indices
	opts.TVE = dpz.Nines(5)     // keep 99.999% of the variance

	res, err := dpz.Compress(values, field.Dims, opts)
	if err != nil {
		panic(err)
	}
	recon, dims, err := dpz.Decompress(res.Data)
	if err != nil {
		panic(err)
	}
	fmt.Printf("dims %v, %d values\n", dims, len(recon))
	fmt.Printf("compressed: CR > 5: %v\n", res.Stats.CRTotal > 5)
	fmt.Printf("fidelity:   PSNR > 40 dB: %v\n", dpz.PSNR32(values, recon) > 40)
	// Output:
	// dims [120 240], 28800 values
	// compressed: CR > 5: true
	// fidelity:   PSNR > 40 dB: true
}

// ExampleEstimateCompression shows the pre-compression probe.
func ExampleEstimateCompression() {
	field := dataset.CESM("PHIS", 120, 240, 8)
	values := make([]float32, len(field.Data))
	for i, v := range field.Data {
		values[i] = float32(v)
	}
	est, err := dpz.EstimateCompression(values, field.Dims, dpz.DefaultOptions())
	if err != nil {
		panic(err)
	}
	fmt.Printf("low linearity: %v\n", est.LowLinearity)
	fmt.Printf("k estimated:   %v\n", est.Ke >= 1)
	fmt.Printf("CR band valid: %v\n", est.CRLow > 1 && est.CRHigh >= est.CRLow)
	// Output:
	// low linearity: false
	// k estimated:   true
	// CR band valid: true
}

// ExampleDecompressRank shows progressive decompression: a coarse preview
// from one principal component, then the full reconstruction.
func ExampleDecompressRank() {
	field := dataset.CESM("FLDSC", 120, 240, 9)
	values := make([]float32, len(field.Data))
	for i, v := range field.Data {
		values[i] = float32(v)
	}
	res, err := dpz.Compress(values, field.Dims, dpz.StrictOptions())
	if err != nil {
		panic(err)
	}
	preview, _, err := dpz.DecompressRank(res.Data, 1) // 1 component
	if err != nil {
		panic(err)
	}
	full, _, err := dpz.DecompressRank(res.Data, 0) // all components
	if err != nil {
		panic(err)
	}
	fmt.Printf("preview below full fidelity: %v\n",
		dpz.PSNR32(values, preview) < dpz.PSNR32(values, full))
	// Output:
	// preview below full fidelity: true
}
