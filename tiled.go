package dpz

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"dpz/internal/archive"
	"dpz/internal/basiscache"
	"dpz/internal/core"
	"dpz/internal/parallel"
	"dpz/internal/retrieval"
)

// Tiled compression: fields too large to hold in memory are compressed in
// slabs of leading-dimension rows, each slab an independent DPZ stream
// inside one archive container. Decompression can stream slab by slab or
// fetch a single slab — the out-of-core workflow the paper's
// exabyte-scale motivation implies.

// tiledMetaName is the archive entry holding the tiling description.
const tiledMetaName = "_dpz_tiled_meta"

// tiledIndexName is the archive entry holding the consolidated retrieval
// index: one Summary per tile, in tile order, in the same DPZI payload
// encoding each tile's own stream carries. Readers fall back to
// assembling the index from the per-tile streams when this entry is
// missing or damaged.
const tiledIndexName = "_dpz_index"

// tiledMeta describes how a field was split.
type tiledMeta struct {
	Dims     []int `json:"dims"`
	TileRows int   `json:"tile_rows"`
	Tiles    int   `json:"tiles"`
}

// tileName formats the archive entry name of slab i.
func tileName(i int) string { return fmt.Sprintf("tile-%06d", i) }

// tilePrefetch is how many tiles the pipeline source reads ahead of the
// slowest in-flight compression: while tile i is being written and tiles
// up to i+W are compressing, tiles up to i+W+tilePrefetch are already
// read off the input stream.
const tilePrefetch = 2

// CompressTiled reads a raw little-endian float32 field (the SDRBench
// layout) from r and writes a tiled DPZ archive to w. The field's leading
// dimension is split into slabs of tileRows rows (the last slab may be
// shorter); each slab is compressed independently with opts, so peak
// memory is bounded by the in-flight slab count.
//
// Tiles flow through a bounded three-stage pipeline: a reader goroutine
// streams slabs off r, up to opts.Workers tiles compress concurrently,
// and finished streams are appended to the archive strictly in tile
// order — so the output archive is byte-identical to the serial path
// for every worker count. Returns per-slab stats in tile order.
func CompressTiled(r io.Reader, dims []int, tileRows int, opts Options, w io.Writer) ([]Stats, error) {
	return CompressTiledContext(context.Background(), r, dims, tileRows, opts, w)
}

// CompressTiledContext is CompressTiled with cooperative cancellation: a
// cancelled ctx stops the tile reader, abandons in-flight tile
// compressions mid-pipeline, and returns ctx.Err(). Tiles already
// appended stay in w — the output is an incomplete archive the caller
// should discard.
func CompressTiledContext(ctx context.Context, r io.Reader, dims []int, tileRows int, opts Options, w io.Writer) ([]Stats, error) {
	if len(dims) < 1 {
		return nil, fmt.Errorf("dpz: tiled compression needs at least 1 dimension")
	}
	for _, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("dpz: non-positive dimension in %v", dims)
		}
	}
	if tileRows <= 0 || tileRows > dims[0] {
		return nil, fmt.Errorf("dpz: tileRows %d out of [1,%d]", tileRows, dims[0])
	}
	rowValues := 1
	for _, d := range dims[1:] {
		rowValues *= d
	}
	tiles := (dims[0] + tileRows - 1) / tileRows

	aw, err := archive.NewWriter(w)
	if err != nil {
		return nil, err
	}
	meta, err := json.Marshal(tiledMeta{Dims: dims, TileRows: tileRows, Tiles: tiles})
	if err != nil {
		return nil, fmt.Errorf("dpz: %w", err)
	}
	if err := aw.Append(tiledMetaName, meta); err != nil {
		return nil, err
	}

	// Split the worker budget: wt tiles in flight, each compressing with
	// inner workers, so total goroutines stay near the budget whether the
	// field has many small tiles or a few big ones.
	wall := opts.Workers
	if wall <= 0 {
		wall = parallel.DefaultWorkers()
	}
	wt := min(wall, tiles)
	inner := opts
	inner.Workers = (wall + wt - 1) / wt

	// Basis reuse: keys are computed and cache slots acquired in the
	// sequential source stage below, so cache state evolves in tile order
	// regardless of the worker count — the determinism contract. With no
	// caller-provided cache the reuse scope is this call.
	var cache *basiscache.Cache
	var optFP uint64
	if basisEligible(opts) {
		if opts.BasisCache != nil {
			cache = opts.BasisCache.c
		} else {
			cache = basiscache.New(0)
		}
		optFP = basisFingerprint(opts)
	}
	// A follower tile blocks until its leader publishes; if the pipeline
	// fails elsewhere, the leader's job can be drained without ever
	// running, so every failure path must cancel pctx to wake followers.
	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()

	type tileJob struct {
		t    int
		rows int
		raw  []byte
		h    *basiscache.Handle
	}
	type tileRes struct {
		stream []byte
		stats  Stats
	}
	br := bufio.NewReaderSize(r, 1<<20)
	statsOut := make([]Stats, 0, tiles)
	tileSums := make([]retrieval.Summary, 0, tiles)
	err = parallel.PipelineCtx(ctx, wt, tilePrefetch,
		func(emit func(tileJob) bool) error {
			for t := 0; t < tiles; t++ {
				rows := tileRows
				if t == tiles-1 {
					rows = dims[0] - t*tileRows
				}
				raw := make([]byte, 4*rows*rowValues)
				if _, err := io.ReadFull(br, raw); err != nil {
					pcancel()
					return fmt.Errorf("dpz: reading tile %d: %w", t, err)
				}
				var h *basiscache.Handle
				if cache != nil {
					slabDims := append([]int{rows}, dims[1:]...)
					h = cache.Acquire(basiscache.KeyForRaw(dimsKey(slabDims), optFP, raw))
				}
				if !emit(tileJob{t: t, rows: rows, raw: raw, h: h}) {
					if h != nil {
						h.Fulfill(nil) // never dispatched: retract so nobody waits on it
					}
					return nil
				}
			}
			return nil
		},
		func(j tileJob) (tileRes, error) {
			done := false
			defer func() {
				if !done {
					pcancel()
				}
			}()
			slab := make([]float64, len(j.raw)/4)
			for i := range slab {
				slab[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(j.raw[4*i:])))
			}
			slabDims := append([]int{j.rows}, dims[1:]...)
			var res *Result
			var err error
			if j.h != nil {
				res, err = compressWithHandle(pctx, slab, slabDims, inner, j.h)
			} else {
				res, err = CompressFloat64Context(ctx, slab, slabDims, inner)
			}
			if err != nil {
				return tileRes{}, fmt.Errorf("dpz: tile %d: %w", j.t, err)
			}
			done = true
			return tileRes{stream: res.Data, stats: res.Stats}, nil
		},
		func(idx int, res tileRes) error {
			if err := aw.Append(tileName(idx), res.stream); err != nil {
				pcancel()
				return err
			}
			statsOut = append(statsOut, res.stats)
			// Collect the tile's summary for the consolidated archive
			// index. The sink runs in tile order, so tileSums ends up in
			// tile order for every worker count.
			if !opts.NoIndex {
				if ix, err := core.ReadIndex(res.stream); err == nil && len(ix.Tiles) == 1 {
					tileSums = append(tileSums, ix.Tiles[0])
				}
			}
			return nil
		},
	)
	if err != nil {
		return nil, err
	}
	// One consolidated index entry lets queries touch a single archive
	// entry instead of every tile stream. Written only when every tile
	// contributed a summary, so its tile numbering always matches.
	if !opts.NoIndex && len(tileSums) == tiles {
		if err := aw.Append(tiledIndexName, retrieval.EncodePayload(tileSums)); err != nil {
			return nil, err
		}
	}
	if err := aw.Close(); err != nil {
		return nil, err
	}
	return statsOut, nil
}

// TiledReader provides slab-level access to a tiled archive.
type TiledReader struct {
	ar       *ArchiveReader
	dims     []int
	tileRows int
	tiles    int
}

// OpenTiled parses a tiled archive of the given total size.
func OpenTiled(r io.ReaderAt, size int64) (*TiledReader, error) {
	return OpenTiledOptions(r, size, ArchiveOptions{})
}

// OpenTiledOptions is OpenTiled with archive options — pass AllowRecovery
// to read a tiled archive with a torn tail. The consolidated index entry
// is written last, so it is typically the first casualty of a torn write;
// TiledReader.Index then reassembles the index from the recovered tile
// streams.
func OpenTiledOptions(r io.ReaderAt, size int64, o ArchiveOptions) (*TiledReader, error) {
	ar, err := OpenArchiveOptions(r, size, o)
	if err != nil {
		return nil, err
	}
	raw, err := ar.Stream(tiledMetaName)
	if err != nil {
		return nil, fmt.Errorf("dpz: not a tiled archive: %w", err)
	}
	var meta tiledMeta
	if err := json.Unmarshal(raw, &meta); err != nil {
		return nil, fmt.Errorf("dpz: corrupt tiled metadata: %w", err)
	}
	if len(meta.Dims) < 1 || meta.TileRows < 1 || meta.Tiles < 1 {
		return nil, fmt.Errorf("dpz: implausible tiled metadata %+v", meta)
	}
	want := (meta.Dims[0] + meta.TileRows - 1) / meta.TileRows
	if want != meta.Tiles {
		return nil, fmt.Errorf("dpz: tiled metadata inconsistent: %d tiles for %v/%d",
			meta.Tiles, meta.Dims, meta.TileRows)
	}
	return &TiledReader{ar: ar, dims: meta.Dims, tileRows: meta.TileRows, tiles: meta.Tiles}, nil
}

// Dims returns the full field dimensions.
func (t *TiledReader) Dims() []int {
	out := make([]int, len(t.dims))
	copy(out, t.dims)
	return out
}

// Tiles returns the slab count.
func (t *TiledReader) Tiles() int { return t.tiles }

// TileRows returns the leading-dimension rows per slab (the last slab may
// hold fewer).
func (t *TiledReader) TileRows() int { return t.tileRows }

// Index returns the archive's retrieval index: one TileSummary per slab,
// in tile order. It reads the consolidated _dpz_index entry when present
// and intact; otherwise it assembles the index from each tile stream's
// own trailing index section — so an archive that lost only the
// consolidated entry (e.g. after Recover) still answers queries. Archives
// written with NoIndex (or by pre-index releases) return an error
// wrapping ErrNoIndex. No data section is inflated either way.
func (t *TiledReader) Index() (*Index, error) {
	if raw, err := t.ar.Stream(tiledIndexName); err == nil {
		if ix, err := retrieval.DecodePayload(raw); err == nil && len(ix.Tiles) == t.tiles {
			return ix, nil
		}
		// Damaged or inconsistent consolidated entry: fall through to the
		// per-tile assembly rather than answering from bad metadata.
	}
	tilesum := make([]retrieval.Summary, t.tiles)
	for i := 0; i < t.tiles; i++ {
		payload, err := t.ar.Stream(tileName(i))
		if err != nil {
			return nil, &retrieval.CorruptError{Reason: fmt.Sprintf("tile %d unreadable: %v", i, err)}
		}
		ix, err := core.ReadIndex(payload)
		if err != nil {
			return nil, err
		}
		if len(ix.Tiles) != 1 {
			return nil, &retrieval.CorruptError{Reason: fmt.Sprintf("tile %d carries %d summaries", i, len(ix.Tiles))}
		}
		tilesum[i] = ix.Tiles[0]
	}
	return &retrieval.Index{Tiles: tilesum}, nil
}

// Tile decompresses slab i, returning its values and slab dims.
func (t *TiledReader) Tile(i int) ([]float64, []int, error) {
	if i < 0 || i >= t.tiles {
		return nil, nil, fmt.Errorf("dpz: tile %d out of [0,%d)", i, t.tiles)
	}
	payload, err := t.ar.Stream(tileName(i))
	if err != nil {
		return nil, nil, err
	}
	return DecompressFloat64(payload)
}

// ReadAll decompresses every slab into one float64 field, fetching and
// decoding tiles in parallel with the default worker count.
func (t *TiledReader) ReadAll() ([]float64, []int, error) {
	return t.ReadAllParallel(0)
}

// ReadAllParallel is ReadAll with an explicit worker bound (0 =
// GOMAXPROCS). Tile offsets in the output are fixed by the metadata, so
// each worker decompresses into a disjoint range and the result is
// independent of the worker count. The archive reader serves concurrent
// random-access reads, so this also parallelizes the payload fetch and
// checksum verification.
func (t *TiledReader) ReadAllParallel(workers int) ([]float64, []int, error) {
	total := 1
	for _, d := range t.dims {
		total *= d
	}
	rowValues := 1
	for _, d := range t.dims[1:] {
		rowValues *= d
	}
	out := make([]float64, total)
	errs := make([]error, t.tiles)
	parallel.For(t.tiles, workers, func(i int) {
		slab, slabDims, err := t.Tile(i)
		if err != nil {
			errs[i] = err
			return
		}
		// Each slab must be shape-consistent with the metadata.
		wantRows := t.tileRows
		if i == t.tiles-1 {
			wantRows = t.dims[0] - i*t.tileRows
		}
		if slabDims[0] != wantRows {
			errs[i] = fmt.Errorf("dpz: tile %d has %d rows, want %d", i, slabDims[0], wantRows)
			return
		}
		off := i * t.tileRows * rowValues
		if len(slab) != wantRows*rowValues || off+len(slab) > total {
			errs[i] = fmt.Errorf("dpz: tile %d has %d values, want %d", i, len(slab), wantRows*rowValues)
			return
		}
		copy(out[off:], slab)
	})
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return out, t.Dims(), nil
}
