package dpz

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"dpz/internal/archive"
)

// Tiled compression: fields too large to hold in memory are compressed in
// slabs of leading-dimension rows, each slab an independent DPZ stream
// inside one archive container. Decompression can stream slab by slab or
// fetch a single slab — the out-of-core workflow the paper's
// exabyte-scale motivation implies.

// tiledMetaName is the archive entry holding the tiling description.
const tiledMetaName = "_dpz_tiled_meta"

// tiledMeta describes how a field was split.
type tiledMeta struct {
	Dims     []int `json:"dims"`
	TileRows int   `json:"tile_rows"`
	Tiles    int   `json:"tiles"`
}

// tileName formats the archive entry name of slab i.
func tileName(i int) string { return fmt.Sprintf("tile-%06d", i) }

// CompressTiled reads a raw little-endian float32 field (the SDRBench
// layout) from r and writes a tiled DPZ archive to w. The field's leading
// dimension is split into slabs of tileRows rows (the last slab may be
// shorter); each slab is compressed independently with opts, so peak
// memory is one slab. Returns per-slab stats.
func CompressTiled(r io.Reader, dims []int, tileRows int, opts Options, w io.Writer) ([]Stats, error) {
	if len(dims) < 1 {
		return nil, fmt.Errorf("dpz: tiled compression needs at least 1 dimension")
	}
	for _, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("dpz: non-positive dimension in %v", dims)
		}
	}
	if tileRows <= 0 || tileRows > dims[0] {
		return nil, fmt.Errorf("dpz: tileRows %d out of [1,%d]", tileRows, dims[0])
	}
	rowValues := 1
	for _, d := range dims[1:] {
		rowValues *= d
	}
	tiles := (dims[0] + tileRows - 1) / tileRows

	aw, err := archive.NewWriter(w)
	if err != nil {
		return nil, err
	}
	meta, err := json.Marshal(tiledMeta{Dims: dims, TileRows: tileRows, Tiles: tiles})
	if err != nil {
		return nil, fmt.Errorf("dpz: %w", err)
	}
	if err := aw.Append(tiledMetaName, meta); err != nil {
		return nil, err
	}

	br := bufio.NewReaderSize(r, 1<<20)
	buf := make([]byte, 4)
	statsOut := make([]Stats, 0, tiles)
	for t := 0; t < tiles; t++ {
		rows := tileRows
		if t == tiles-1 {
			rows = dims[0] - t*tileRows
		}
		n := rows * rowValues
		slab := make([]float64, n)
		for i := 0; i < n; i++ {
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, fmt.Errorf("dpz: reading tile %d: %w", t, err)
			}
			slab[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf)))
		}
		slabDims := append([]int{rows}, dims[1:]...)
		res, err := CompressFloat64(slab, slabDims, opts)
		if err != nil {
			return nil, fmt.Errorf("dpz: tile %d: %w", t, err)
		}
		if err := aw.Append(tileName(t), res.Data); err != nil {
			return nil, err
		}
		statsOut = append(statsOut, res.Stats)
	}
	if err := aw.Close(); err != nil {
		return nil, err
	}
	return statsOut, nil
}

// TiledReader provides slab-level access to a tiled archive.
type TiledReader struct {
	ar       *ArchiveReader
	dims     []int
	tileRows int
	tiles    int
}

// OpenTiled parses a tiled archive of the given total size.
func OpenTiled(r io.ReaderAt, size int64) (*TiledReader, error) {
	ar, err := OpenArchive(r, size)
	if err != nil {
		return nil, err
	}
	raw, err := ar.Stream(tiledMetaName)
	if err != nil {
		return nil, fmt.Errorf("dpz: not a tiled archive: %w", err)
	}
	var meta tiledMeta
	if err := json.Unmarshal(raw, &meta); err != nil {
		return nil, fmt.Errorf("dpz: corrupt tiled metadata: %w", err)
	}
	if len(meta.Dims) < 1 || meta.TileRows < 1 || meta.Tiles < 1 {
		return nil, fmt.Errorf("dpz: implausible tiled metadata %+v", meta)
	}
	want := (meta.Dims[0] + meta.TileRows - 1) / meta.TileRows
	if want != meta.Tiles {
		return nil, fmt.Errorf("dpz: tiled metadata inconsistent: %d tiles for %v/%d",
			meta.Tiles, meta.Dims, meta.TileRows)
	}
	return &TiledReader{ar: ar, dims: meta.Dims, tileRows: meta.TileRows, tiles: meta.Tiles}, nil
}

// Dims returns the full field dimensions.
func (t *TiledReader) Dims() []int {
	out := make([]int, len(t.dims))
	copy(out, t.dims)
	return out
}

// Tiles returns the slab count.
func (t *TiledReader) Tiles() int { return t.tiles }

// TileRows returns the leading-dimension rows per slab (the last slab may
// hold fewer).
func (t *TiledReader) TileRows() int { return t.tileRows }

// Tile decompresses slab i, returning its values and slab dims.
func (t *TiledReader) Tile(i int) ([]float64, []int, error) {
	if i < 0 || i >= t.tiles {
		return nil, nil, fmt.Errorf("dpz: tile %d out of [0,%d)", i, t.tiles)
	}
	payload, err := t.ar.Stream(tileName(i))
	if err != nil {
		return nil, nil, err
	}
	return DecompressFloat64(payload)
}

// ReadAll streams every slab in order into one float64 field.
func (t *TiledReader) ReadAll() ([]float64, []int, error) {
	total := 1
	for _, d := range t.dims {
		total *= d
	}
	out := make([]float64, 0, total)
	for i := 0; i < t.tiles; i++ {
		slab, slabDims, err := t.Tile(i)
		if err != nil {
			return nil, nil, err
		}
		// Each slab must be shape-consistent with the metadata.
		wantRows := t.tileRows
		if i == t.tiles-1 {
			wantRows = t.dims[0] - i*t.tileRows
		}
		if slabDims[0] != wantRows {
			return nil, nil, fmt.Errorf("dpz: tile %d has %d rows, want %d", i, slabDims[0], wantRows)
		}
		out = append(out, slab...)
	}
	if len(out) != total {
		return nil, nil, fmt.Errorf("dpz: tiled field has %d values, want %d", len(out), total)
	}
	return out, t.Dims(), nil
}
