package dpz_test

import (
	"math"
	"testing"

	"dpz"
	"dpz/internal/dataset"
)

func testField() ([]float32, []int) {
	f := dataset.CESM("FLDSC", 90, 180, 77)
	out := make([]float32, len(f.Data))
	for i, v := range f.Data {
		out[i] = float32(v)
	}
	return out, f.Dims
}

func TestPublicRoundTrip(t *testing.T) {
	data, dims := testField()
	res, err := dpz.Compress(data, dims, dpz.StrictOptions())
	if err != nil {
		t.Fatal(err)
	}
	recon, gotDims, err := dpz.Decompress(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(recon) != len(data) || gotDims[0] != dims[0] || gotDims[1] != dims[1] {
		t.Fatalf("shape mismatch: %v / %d values", gotDims, len(recon))
	}
	if psnr := dpz.PSNR32(data, recon); psnr < 40 {
		t.Fatalf("PSNR = %.1f dB", psnr)
	}
	if res.Stats.CRTotal < 2 {
		t.Fatalf("CR = %.2f", res.Stats.CRTotal)
	}
}

func TestPublicOptionPresets(t *testing.T) {
	l, s := dpz.LooseOptions(), dpz.StrictOptions()
	if l.P != 1e-3 || l.IndexBytes != dpz.Index1Byte {
		t.Fatalf("loose = %+v", l)
	}
	if s.P != 1e-4 || s.IndexBytes != dpz.Index2Byte {
		t.Fatalf("strict = %+v", s)
	}
}

func TestPublicKneePoint(t *testing.T) {
	data, dims := testField()
	o := dpz.LooseOptions()
	o.Selection = dpz.KneePoint
	o.Fit = dpz.FitPoly
	res, err := dpz.Compress(data, dims, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.K < 1 || res.Stats.K > res.Stats.Blocks {
		t.Fatalf("k = %d", res.Stats.K)
	}
}

func TestPublicSampling(t *testing.T) {
	data, dims := testField()
	o := dpz.StrictOptions()
	o.UseSampling = true
	res, err := dpz.Compress(data, dims, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Sampling == nil {
		t.Fatal("sampling report missing")
	}
	if res.Stats.Sampling.Ke != res.Stats.K {
		t.Fatalf("Ke %d != K %d", res.Stats.Sampling.Ke, res.Stats.K)
	}
}

func TestPublicEstimate(t *testing.T) {
	data, dims := testField()
	est, err := dpz.EstimateCompression(data, dims, dpz.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if est.Ke < 1 {
		t.Fatalf("Ke = %d", est.Ke)
	}
	if est.CRLow <= 0 || est.CRHigh < est.CRLow {
		t.Fatalf("CR band [%v, %v]", est.CRLow, est.CRHigh)
	}
	if est.MeanVIF < 1 {
		t.Fatalf("MeanVIF = %v", est.MeanVIF)
	}
	// A smooth CESM-like field is exactly DPZ's good case.
	if est.LowLinearity {
		t.Fatal("smooth field flagged low linearity")
	}
}

func TestPublicEstimateValidation(t *testing.T) {
	data, _ := testField()
	if _, err := dpz.EstimateCompression(data, []int{3, 3}, dpz.DefaultOptions()); err == nil {
		t.Fatal("expected dims mismatch error")
	}
	if _, err := dpz.EstimateCompression(data, []int{0, 5}, dpz.DefaultOptions()); err == nil {
		t.Fatal("expected bad dims error")
	}
}

func TestPublicMetrics(t *testing.T) {
	a := []float64{0, 10}
	b := []float64{1, 11}
	if got := dpz.PSNR(a, b); math.Abs(got-20) > 1e-9 {
		t.Fatalf("PSNR = %v", got)
	}
	if got := dpz.MSE(a, b); got != 1 {
		t.Fatalf("MSE = %v", got)
	}
	if got := dpz.MaxAbsError(a, b); got != 1 {
		t.Fatalf("MaxAbsError = %v", got)
	}
	if got := dpz.MeanRelativeError(a, b); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("MeanRelativeError = %v", got)
	}
	if got := dpz.BitRate(16, 32); got != 2 {
		t.Fatalf("BitRate = %v", got)
	}
	if got := dpz.CompressionRatio(100, 25); got != 4 {
		t.Fatalf("CompressionRatio = %v", got)
	}
	if got := dpz.Nines(4); math.Abs(got-0.9999) > 1e-12 {
		t.Fatalf("Nines(4) = %v", got)
	}
}

func TestPublicDiagnostics(t *testing.T) {
	data, dims := testField()
	o := dpz.LooseOptions()
	o.CollectDiagnostics = true
	res, err := dpz.Compress(data, dims, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Stage12PSNR == 0 || res.Stats.FinalPSNR == 0 {
		t.Fatal("diagnostics missing")
	}
}

func TestPublicNewOptions(t *testing.T) {
	data, dims := testField()
	o := dpz.StrictOptions()
	o.Use2DDCT = true
	o.CoeffTruncate = 0.25
	res, err := dpz.Compress(data, dims, o)
	if err != nil {
		t.Fatal(err)
	}
	recon, _, err := dpz.Decompress(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	if psnr := dpz.PSNR32(data, recon); psnr < 30 {
		t.Fatalf("2-D DCT + truncation PSNR %.1f", psnr)
	}
}

func TestPublicDoublePrecision(t *testing.T) {
	f := dataset.CESM("FLDSC", 60, 120, 88)
	o := dpz.StrictOptions()
	o.DoublePrecision = true
	res, err := dpz.CompressFloat64(f.Data, f.Dims, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.OrigBytes != 8*f.Len() {
		t.Fatalf("double-precision accounting: OrigBytes %d, want %d", res.Stats.OrigBytes, 8*f.Len())
	}
	recon, _, err := dpz.DecompressFloat64(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	if psnr := dpz.PSNR(f.Data, recon); psnr < 30 {
		t.Fatalf("double-precision PSNR %.1f", psnr)
	}
}

func TestPublicDecompressRank(t *testing.T) {
	data, dims := testField()
	res, err := dpz.Compress(data, dims, dpz.StrictOptions())
	if err != nil {
		t.Fatal(err)
	}
	preview, _, err := dpz.DecompressRank(res.Data, 1)
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := dpz.DecompressRank(res.Data, 0)
	if err != nil {
		t.Fatal(err)
	}
	pPrev := dpz.PSNR32(data, preview)
	pFull := dpz.PSNR32(data, full)
	if pFull < pPrev {
		t.Fatalf("full rank PSNR %.2f below 1-component preview %.2f", pFull, pPrev)
	}
}

func TestPublicTuneForPSNR(t *testing.T) {
	data, dims := testField()
	opts, achieved, err := dpz.TuneForPSNR(data, dims, 42, dpz.StrictOptions())
	if err != nil {
		t.Fatal(err)
	}
	if achieved < 42 {
		t.Fatalf("achieved %.1f dB", achieved)
	}
	res, err := dpz.Compress(data, dims, opts)
	if err != nil {
		t.Fatal(err)
	}
	recon, _, err := dpz.Decompress(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	if psnr := dpz.PSNR32(data, recon); psnr < 42 {
		t.Fatalf("tuned options deliver %.1f dB", psnr)
	}
}
