package dpz

import (
	"context"

	"dpz/internal/core"
	"dpz/internal/retrieval"
	"dpz/internal/stats"
)

// Compressed-domain retrieval: every format-v3 stream carries a trailing
// index section with per-tile summaries (min/max/mean/RMS and per-rank
// coefficient energy), gathered during compression at no extra pass over
// the data. The index answers range predicates, top-k similarity and
// aggregate statistics without inflating a single data section, and the
// rank-ordered layout serves cheap previews from only the leading
// components. See docs/FORMAT.md for the on-disk layout.

// TileSummary is the per-tile statistics record stored in a stream's
// index section: value statistics plus the per-rank PCA coefficient
// energy that similarity scoring runs on.
type TileSummary = retrieval.Summary

// Index is a queryable collection of tile summaries — one per stream for
// single-shot compressions, one per slab for tiled archives. Its Range,
// TopK, SimilarTo and Aggregate methods answer queries from the summaries
// alone.
type Index = retrieval.Index

// Predicate is one range-query condition over a summary field, e.g.
// "max>273.15"; build them with ParsePredicate or literals.
type Predicate = retrieval.Predicate

// Match is one query result: a tile number and its score (the predicate
// field's value for range queries, cosine similarity for TopK).
type Match = retrieval.Match

// IndexAggregate is the whole-field statistics roll-up computed from an
// index; see Index.Aggregate.
type IndexAggregate = retrieval.Aggregate

// IndexCorruptError reports a structurally damaged index payload. It
// wraps ErrNoIndex, so callers that only care about "queries unavailable,
// fall back to a full decode" can errors.Is against ErrNoIndex alone.
type IndexCorruptError = retrieval.CorruptError

// ErrNoIndex reports that a stream or archive carries no usable retrieval
// index — written with NoIndex, produced by a pre-index release, or
// damaged beyond parsing. Data decoding is unaffected; fall back to
// decompressing and computing directly.
var ErrNoIndex = retrieval.ErrNoIndex

// ParsePredicate parses a textual range predicate like "max>273.15" or
// "rms<=1e-3" (fields min, max, mean, rms; operators >, >=, <, <=).
func ParsePredicate(s string) (Predicate, error) { return retrieval.ParsePredicate(s) }

// ReadIndex extracts the retrieval index from a single DPZ stream without
// inflating any data section. Streams without a usable index return an
// error wrapping ErrNoIndex.
func ReadIndex(buf []byte) (*Index, error) { return core.ReadIndex(buf) }

// DecompressRanks reconstructs a preview from only the `ranks` leading
// principal components, inflating just those sections (plus side data) —
// unlike DecompressRank, trailing sections are never touched, so a
// low-rank preview of a large stream costs a fraction of the full decode.
// ranks <= 0 or >= the stored k decodes everything. Returns the values,
// dims and the rank actually used.
func DecompressRanks(buf []byte, ranks int) ([]float32, []int, int, error) {
	d, dims, used, err := DecompressRanksFloat64(buf, ranks)
	if err != nil {
		return nil, nil, 0, err
	}
	return stats.Float64To32(d), dims, used, nil
}

// DecompressRanksFloat64 is DecompressRanks with double-precision output.
func DecompressRanksFloat64(buf []byte, ranks int) ([]float64, []int, int, error) {
	return core.DecompressRanks(buf, ranks, 0)
}

// DecompressRanksContext is DecompressRanks with cooperative cancellation
// and an explicit worker bound (0 = GOMAXPROCS).
func DecompressRanksContext(ctx context.Context, buf []byte, ranks, workers int) ([]float32, []int, int, error) {
	d, dims, used, err := core.DecompressRanksContext(ctx, buf, ranks, workers)
	if err != nil {
		return nil, nil, 0, err
	}
	return stats.Float64To32(d), dims, used, nil
}

// Progressive decodes one stream at increasing fidelity: each Decode(r)
// call reuses every section already inflated by earlier calls, so
// refining a preview from rank 4 to rank 16 only pays for ranks 5-16.
// Each result is byte-identical to DecompressRankFloat64 at the same
// rank. Not safe for concurrent use.
type Progressive struct {
	p *core.Progressive
}

// NewProgressive parses the stream's structure (no payload inflation) and
// returns a progressive decoder positioned before rank 1. workers bounds
// the parallel section decode (0 = GOMAXPROCS).
func NewProgressive(buf []byte, workers int) (*Progressive, error) {
	p, err := core.NewProgressive(buf, workers)
	if err != nil {
		return nil, err
	}
	return &Progressive{p: p}, nil
}

// StoredRank returns the stream's stored component count k.
func (p *Progressive) StoredRank() int { return p.p.StoredRank() }

// Dims returns the stream's original dimensions.
func (p *Progressive) Dims() []int { return p.p.Dims() }

// Decode reconstructs from the `ranks` leading components (<= 0 or >= k
// decodes all), returning values, dims and the rank used.
func (p *Progressive) Decode(ranks int) ([]float64, []int, int, error) {
	return p.p.Decode(ranks)
}

// DecodeContext is Decode with cooperative cancellation.
func (p *Progressive) DecodeContext(ctx context.Context, ranks int) ([]float64, []int, int, error) {
	return p.p.DecodeContext(ctx, ranks)
}
