package dpz

import (
	"context"
	"fmt"
	"io"

	"dpz/internal/archive"
	"dpz/internal/basiscache"
	"dpz/internal/fault"
	"dpz/internal/parallel"
	"dpz/internal/stats"
)

// ArchiveWriter packs many named DPZ-compressed fields into one container
// stream (a simulation campaign's worth of diagnostics in a single file).
// Fields are compressed as they are added; Close finalizes the index.
type ArchiveWriter struct {
	w *archive.Writer
}

// NewArchiveWriter starts a DPZ archive on w.
func NewArchiveWriter(w io.Writer) (*ArchiveWriter, error) {
	aw, err := archive.NewWriter(w)
	if err != nil {
		return nil, err
	}
	return &ArchiveWriter{w: aw}, nil
}

// Compress compresses data under the given field name and appends it.
// It returns the compression statistics.
func (a *ArchiveWriter) Compress(name string, data []float32, dims []int, o Options) (*Stats, error) {
	return a.CompressFloat64(name, stats.Float32To64(data), dims, o)
}

// CompressFloat64 is Compress for double-precision input.
func (a *ArchiveWriter) CompressFloat64(name string, data []float64, dims []int, o Options) (*Stats, error) {
	res, err := CompressFloat64(data, dims, o)
	if err != nil {
		return nil, fmt.Errorf("dpz: archive field %q: %w", name, err)
	}
	if err := a.w.Append(name, res.Data); err != nil {
		return nil, err
	}
	return &res.Stats, nil
}

// Append stores an already-compressed DPZ stream under name.
func (a *ArchiveWriter) Append(name string, stream []byte) error {
	return a.w.Append(name, stream)
}

// ArchiveField is one input to CompressBatch: a named field with its
// row-major data and logical dimensions.
type ArchiveField struct {
	Name string
	Data []float64
	Dims []int
}

// CompressBatch compresses many fields concurrently and appends them in
// the given order — the multi-field analogue of the tiled pipeline. The
// archive bytes are identical to appending the fields one by one, for
// every worker count; only the wall-clock changes. Returns per-field
// stats in input order.
func (a *ArchiveWriter) CompressBatch(fields []ArchiveField, o Options) ([]Stats, error) {
	if len(fields) == 0 {
		return nil, nil
	}
	// Divide the worker budget between concurrent fields and the workers
	// inside each field's compression.
	wall := o.Workers
	if wall <= 0 {
		wall = parallel.DefaultWorkers()
	}
	wf := min(wall, len(fields))
	inner := o
	inner.Workers = (wall + wf - 1) / wf

	// Basis reuse mirrors the tiled pipeline: cache slots are acquired in
	// the sequential source stage (field order), so the bases any field
	// observes are independent of the worker count. pctx wakes followers
	// whose leader job was drained by a pipeline failure elsewhere.
	var cache *basiscache.Cache
	var optFP uint64
	if basisEligible(o) {
		if o.BasisCache != nil {
			cache = o.BasisCache.c
		} else {
			cache = basiscache.New(0)
		}
		optFP = basisFingerprint(o)
	}
	pctx, pcancel := context.WithCancel(context.Background())
	defer pcancel()

	type fieldJob struct {
		i int
		h *basiscache.Handle
	}
	statsOut := make([]Stats, 0, len(fields))
	err := parallel.Pipeline(wf, 0,
		func(emit func(fieldJob) bool) error {
			for i := range fields {
				var h *basiscache.Handle
				if cache != nil {
					f := fields[i]
					h = cache.Acquire(basiscache.KeyFor(dimsKey(f.Dims), optFP, f.Data))
				}
				if !emit(fieldJob{i: i, h: h}) {
					if h != nil {
						h.Fulfill(nil) // never dispatched: retract so nobody waits on it
					}
					return nil
				}
			}
			return nil
		},
		func(j fieldJob) (*Result, error) {
			done := false
			defer func() {
				if !done {
					pcancel()
				}
			}()
			f := fields[j.i]
			var res *Result
			var err error
			if j.h != nil {
				res, err = compressWithHandle(pctx, f.Data, f.Dims, inner, j.h)
			} else {
				res, err = CompressFloat64(f.Data, f.Dims, inner)
			}
			if err != nil {
				return nil, fmt.Errorf("dpz: archive field %q: %w", f.Name, err)
			}
			done = true
			return res, nil
		},
		func(idx int, res *Result) error {
			if err := a.w.Append(fields[idx].Name, res.Data); err != nil {
				pcancel()
				return err
			}
			statsOut = append(statsOut, res.Stats)
			return nil
		},
	)
	if err != nil {
		return nil, err
	}
	return statsOut, nil
}

// Close writes the archive index. A second Close (e.g. from a defer
// after an explicit Close) returns ErrArchiveClosed.
func (a *ArchiveWriter) Close() error { return a.w.Close() }

// ErrArchiveClosed is returned by ArchiveWriter.Append/Compress/Close
// once the writer has been closed; match it with errors.Is.
var ErrArchiveClosed = archive.ErrClosed

// ErrArchiveBroken is returned by a DurableArchiveWriter whose rollback
// failed: the file on disk is still recoverable to its last commit, but
// this writer cannot continue; match it with errors.Is.
var ErrArchiveBroken = archive.ErrBroken

// DurableArchiveWriter is ArchiveWriter with journaled crash safety:
// every appended field is followed by a fsynced commit record, so a
// crash — power cut, OOM kill, torn write — at any byte leaves an
// archive from which RecoverArchiveFile restores every committed field
// byte-identically. A failed Append rolls the file back to the previous
// commit and may be retried. Not safe for concurrent use.
type DurableArchiveWriter struct {
	w *archive.DurableWriter
}

// CreateDurableArchive starts a crash-safe archive at path, which must
// not already exist. The file name itself is made durable (directory
// fsync) before this returns.
func CreateDurableArchive(path string) (*DurableArchiveWriter, error) {
	dw, err := archive.NewDurableWriter(fault.OS{}, path)
	if err != nil {
		return nil, err
	}
	return &DurableArchiveWriter{w: dw}, nil
}

// Compress compresses data under name and appends it with a commit:
// when it returns nil, the field is on stable storage.
func (d *DurableArchiveWriter) Compress(name string, data []float32, dims []int, o Options) (*Stats, error) {
	return d.CompressFloat64(name, stats.Float32To64(data), dims, o)
}

// CompressFloat64 is Compress for double-precision input.
func (d *DurableArchiveWriter) CompressFloat64(name string, data []float64, dims []int, o Options) (*Stats, error) {
	res, err := CompressFloat64(data, dims, o)
	if err != nil {
		return nil, fmt.Errorf("dpz: archive field %q: %w", name, err)
	}
	if err := d.w.Append(name, res.Data); err != nil {
		return nil, err
	}
	return &res.Stats, nil
}

// Append stores an already-compressed DPZ stream under name, committed
// and fsynced before it returns nil.
func (d *DurableArchiveWriter) Append(name string, stream []byte) error {
	return d.w.Append(name, stream)
}

// Committed returns the durable file length: a crash now loses nothing
// before it.
func (d *DurableArchiveWriter) Committed() int64 { return d.w.Committed() }

// Close writes the index and footer and fsyncs; the archive then opens
// through the fast indexed path.
func (d *DurableArchiveWriter) Close() error { return d.w.Close() }

// RecoverArchiveFile opens an archive file that may have a torn tail
// (a durable write that crashed before Close), restoring every
// committed field. The returned closer releases the underlying file;
// close it after the reader is no longer used. Plain (non-durable)
// archives fall back to the whole-file frame scan of RecoverArchive.
func RecoverArchiveFile(path string) (*ArchiveReader, io.Closer, error) {
	rd, f, err := archive.RecoverDurableFile(fault.OS{}, path)
	if err != nil {
		return nil, nil, err
	}
	return &ArchiveReader{r: rd}, f, nil
}

// ArchiveOptions configures OpenArchiveOptions.
type ArchiveOptions struct {
	// AllowRecovery falls back to an entry-frame scan when a v2 archive's
	// tail index is missing, truncated or fails its checksum — the
	// crash-recovery path for torn writes. Check Recovered() on the
	// resulting reader to see whether the fallback was taken.
	AllowRecovery bool
}

// ArchiveReader reads fields back from a finished archive.
type ArchiveReader struct {
	r *archive.Reader
}

// OpenArchive parses the index of an archive of the given total size.
func OpenArchive(r io.ReaderAt, size int64) (*ArchiveReader, error) {
	return OpenArchiveOptions(r, size, ArchiveOptions{})
}

// OpenArchiveOptions is OpenArchive with explicit recovery behaviour.
func OpenArchiveOptions(r io.ReaderAt, size int64, o ArchiveOptions) (*ArchiveReader, error) {
	ar, err := archive.Open(r, size, archive.Options{AllowRecovery: o.AllowRecovery})
	if err != nil {
		return nil, err
	}
	return &ArchiveReader{r: ar}, nil
}

// RecoverArchive salvages every intact field from a damaged v2 archive
// by scanning its self-framing entries, ignoring the index entirely.
func RecoverArchive(r io.ReaderAt, size int64) (*ArchiveReader, error) {
	ar, err := archive.Recover(r, size)
	if err != nil {
		return nil, err
	}
	return &ArchiveReader{r: ar}, nil
}

// Fields lists the stored field names in append order.
func (a *ArchiveReader) Fields() []string { return a.r.Names() }

// Len returns the number of stored fields.
func (a *ArchiveReader) Len() int { return a.r.Len() }

// Decompress reads and decompresses the named field.
func (a *ArchiveReader) Decompress(name string) ([]float32, []int, error) {
	d, dims, err := a.DecompressFloat64(name)
	if err != nil {
		return nil, nil, err
	}
	return stats.Float64To32(d), dims, nil
}

// DecompressFloat64 is Decompress with double-precision output.
func (a *ArchiveReader) DecompressFloat64(name string) ([]float64, []int, error) {
	payload, err := a.r.Payload(name)
	if err != nil {
		return nil, nil, err
	}
	return DecompressFloat64(payload)
}

// Stream returns the raw compressed bytes of the named field. For v2
// archives the payload checksum is verified on every read.
func (a *ArchiveReader) Stream(name string) ([]byte, error) { return a.r.Payload(name) }

// Version reports the archive format version (1 or 2).
func (a *ArchiveReader) Version() int { return a.r.Version() }

// Recovered reports whether this reader came from a frame-scan salvage
// rather than the tail index.
func (a *ArchiveReader) Recovered() bool { return a.r.Recovered() }

// FieldStatus reports one field's integrity from ArchiveReader.Verify.
type FieldStatus = archive.FieldStatus

// Verify reads every field and checks its payload checksum (v2; v1
// archives carry no checksums, so only readability is checked).
func (a *ArchiveReader) Verify() []FieldStatus { return a.r.Verify() }
