// Benchmarks regenerating the paper's tables and figures (one bench per
// experiment; run `go test -bench=. -benchmem`) plus micro-benchmarks of
// the pipeline stages. The dpzbench command runs the same experiments with
// readable output; these benches additionally time them under testing.B.
package dpz_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"testing"

	"dpz"
	"dpz/internal/core"
	"dpz/internal/dataset"
	"dpz/internal/dctz"
	"dpz/internal/experiments"
	"dpz/internal/mgard"
	"dpz/internal/sz"
	"dpz/internal/transform"
	"dpz/internal/tthresh"
	"dpz/internal/zfp"
)

// benchScale keeps the full-experiment benches inside a laptop budget.
const benchScale = 0.04

func runExperiment(b *testing.B, fn func(experiments.Config) error) {
	b.Helper()
	cfg := experiments.Config{Scale: benchScale, Out: io.Discard}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := fn(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- One bench per paper table/figure -----------------------------------

func BenchmarkTable1Inventory(b *testing.B)     { runExperiment(b, experiments.Table1) }
func BenchmarkFig1DCTDistribution(b *testing.B) { runExperiment(b, experiments.Fig1) }
func BenchmarkFig2PCAComponents(b *testing.B)   { runExperiment(b, experiments.Fig2) }
func BenchmarkFig3InformationPreservation(b *testing.B) {
	runExperiment(b, experiments.Fig3)
}
func BenchmarkFig4TransformCombos(b *testing.B) { runExperiment(b, experiments.Fig4) }
func BenchmarkFig6RateDistortion(b *testing.B)  { runExperiment(b, experiments.Fig6) }
func BenchmarkTable2KneePoint(b *testing.B)     { runExperiment(b, experiments.Table2) }
func BenchmarkTable3Breakdown(b *testing.B)     { runExperiment(b, experiments.Table3) }
func BenchmarkTable4AccuracyLoss(b *testing.B)  { runExperiment(b, experiments.Table4) }
func BenchmarkFig7Visualization(b *testing.B)   { runExperiment(b, experiments.Fig7) }
func BenchmarkFig8Throughput(b *testing.B)      { runExperiment(b, experiments.Fig8) }
func BenchmarkFig9StageBreakdown(b *testing.B)  { runExperiment(b, experiments.Fig9) }
func BenchmarkFig10VIF(b *testing.B)            { runExperiment(b, experiments.Fig10) }
func BenchmarkSamplingEstimation(b *testing.B)  { runExperiment(b, experiments.SamplingEval) }
func BenchmarkAblation(b *testing.B)            { runExperiment(b, experiments.Ablation) }
func BenchmarkScaling(b *testing.B)             { runExperiment(b, experiments.Scaling) }

// --- Compressor micro-benchmarks ----------------------------------------

func benchField(b *testing.B) *dataset.Field {
	b.Helper()
	return dataset.CESM("FLDSC", 180, 360, 1)
}

// scalingField is the CLDHGH-scale synthetic used by the worker-scaling
// benchmarks (half the native 1800×3600 CESM grid per side).
func scalingField(b *testing.B) *dataset.Field {
	b.Helper()
	return dataset.CESM("CLDHGH", 900, 1800, 2001)
}

// benchWorkers are the worker counts the scaling benches sweep.
var benchWorkers = []int{1, 2, 4, 8}

// BenchmarkCompress measures end-to-end compression throughput of the
// pipelined hot path at several worker counts.
func BenchmarkCompress(b *testing.B) {
	f := scalingField(b)
	for _, w := range benchWorkers {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			o := dpz.LooseOptions()
			o.Workers = w
			b.SetBytes(int64(4 * f.Len()))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := dpz.CompressFloat64(f.Data, f.Dims, o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDecompress measures parallel section decode + reconstruction.
func BenchmarkDecompress(b *testing.B) {
	f := scalingField(b)
	o := dpz.LooseOptions()
	res, err := dpz.CompressFloat64(f.Data, f.Dims, o)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range benchWorkers {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.SetBytes(int64(4 * f.Len()))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Decompress(res.Data, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTiled measures the three-stage tile pipeline end to end
// (read, compress W tiles concurrently, ordered archive writeback).
func BenchmarkTiled(b *testing.B) {
	f := scalingField(b)
	raw := make([]byte, 4*f.Len())
	for i, v := range f.Data {
		binary.LittleEndian.PutUint32(raw[4*i:], math.Float32bits(float32(v)))
	}
	for _, w := range benchWorkers {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			o := dpz.LooseOptions()
			o.Workers = w
			b.SetBytes(int64(len(raw)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := dpz.CompressTiled(bytes.NewReader(raw), f.Dims, f.Dims[0]/8, o, io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCompressDPZLoose(b *testing.B) {
	f := benchField(b)
	o := dpz.LooseOptions()
	o.TVE = dpz.Nines(5)
	b.SetBytes(int64(4 * f.Len()))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dpz.CompressFloat64(f.Data, f.Dims, o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompressDPZStrict(b *testing.B) {
	f := benchField(b)
	o := dpz.StrictOptions()
	o.TVE = dpz.Nines(5)
	b.SetBytes(int64(4 * f.Len()))
	for i := 0; i < b.N; i++ {
		if _, err := dpz.CompressFloat64(f.Data, f.Dims, o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompressDPZSampling(b *testing.B) {
	f := benchField(b)
	o := dpz.StrictOptions()
	o.TVE = dpz.Nines(5)
	o.UseSampling = true
	b.SetBytes(int64(4 * f.Len()))
	for i := 0; i < b.N; i++ {
		if _, err := dpz.CompressFloat64(f.Data, f.Dims, o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompressDPZ(b *testing.B) {
	f := benchField(b)
	o := dpz.StrictOptions()
	o.TVE = dpz.Nines(5)
	res, err := dpz.CompressFloat64(f.Data, f.Dims, o)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(4 * f.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := dpz.DecompressFloat64(res.Data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompressSZ(b *testing.B) {
	f := benchField(b)
	b.SetBytes(int64(4 * f.Len()))
	for i := 0; i < b.N; i++ {
		if _, err := sz.Compress(f.Data, f.Dims, sz.Params{ErrorBound: 1e-3, Relative: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompressDCTZ(b *testing.B) {
	f := benchField(b)
	b.SetBytes(int64(4 * f.Len()))
	for i := 0; i < b.N; i++ {
		if _, err := dctz.Compress(f.Data, f.Dims, dctz.Params{ErrorBound: 1e-3, Relative: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompressMGARD(b *testing.B) {
	f := benchField(b)
	b.SetBytes(int64(4 * f.Len()))
	for i := 0; i < b.N; i++ {
		if _, err := mgard.Compress(f.Data, f.Dims, mgard.Params{ErrorBound: 1e-3, Relative: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompressZFP(b *testing.B) {
	f := benchField(b)
	b.SetBytes(int64(4 * f.Len()))
	for i := 0; i < b.N; i++ {
		if _, err := zfp.Compress(f.Data, f.Dims, zfp.Params{Mode: zfp.FixedPrecision, Precision: 16}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompressTTHRESH(b *testing.B) {
	f := benchField(b)
	b.SetBytes(int64(4 * f.Len()))
	for i := 0; i < b.N; i++ {
		if _, err := tthresh.Compress(f.Data, f.Dims, tthresh.Params{RMSE: 1e-3, Relative: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDCTForwardRows(b *testing.B) {
	const rows, n = 256, 512
	data := make([]float64, rows*n)
	for i := range data {
		data[i] = float64(i % 97)
	}
	b.SetBytes(int64(8 * len(data)))
	for i := 0; i < b.N; i++ {
		transform.ForwardRows(data, rows, n, 0)
	}
}

func BenchmarkKneePointCompression(b *testing.B) {
	f := benchField(b)
	p := core.DPZL()
	p.Selection = core.KneePoint
	b.SetBytes(int64(4 * f.Len()))
	for i := 0; i < b.N; i++ {
		if _, err := core.Compress(f.Data, f.Dims, p); err != nil {
			b.Fatal(err)
		}
	}
}
