// Determinism and quality of the cross-tile basis-reuse path: with the
// cache on, every worker count must produce byte-identical archives, the
// all-miss case must be byte-identical to the cache-off stream, and
// every accepted or refined fit must still meet the TVE target on its
// own tile.
package dpz_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"testing"

	"dpz"
	"dpz/internal/dataset"
)

// driftedFields builds n near-identical archive fields: one smooth base
// tile with a tiny per-tile multiplicative drift, the workload the basis
// cache exists for.
func driftedFields(n int) []dpz.ArchiveField {
	base := dataset.CESM("CLDHGH", 48, 64, 2001)
	fields := make([]dpz.ArchiveField, n)
	for t := range fields {
		data := make([]float64, len(base.Data))
		drift := 1 + 1e-5*float64(t)
		for i, v := range base.Data {
			data[i] = v * drift
		}
		fields[t] = dpz.ArchiveField{Name: fmt.Sprintf("tile-%02d", t), Data: data, Dims: base.Dims}
	}
	return fields
}

// batchArchive compresses fields with CompressBatch and returns the
// archive bytes plus the per-field stats.
func batchArchive(t *testing.T, fields []dpz.ArchiveField, o dpz.Options) ([]byte, []dpz.Stats) {
	t.Helper()
	var buf bytes.Buffer
	aw, err := dpz.NewArchiveWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := aw.CompressBatch(fields, o)
	if err != nil {
		t.Fatalf("workers=%d: %v", o.Workers, err)
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), stats
}

func TestBasisReuseBatchWorkersByteIdentical(t *testing.T) {
	fields := driftedFields(16)
	var (
		ref      []byte
		refStats []dpz.Stats
	)
	for _, w := range detWorkers {
		o := dpz.LooseOptions()
		o.Workers = w
		o.BasisReuse = true
		got, stats := batchArchive(t, fields, o)
		if ref == nil {
			ref, refStats = got, stats
			continue
		}
		if !bytes.Equal(got, ref) {
			t.Fatalf("workers=%d archive differs from workers=%d with basis reuse on", w, detWorkers[0])
		}
		for i := range stats {
			if stats[i].BasisDecision != refStats[i].BasisDecision {
				t.Fatalf("workers=%d field %d: decision %q, workers=%d said %q",
					w, i, stats[i].BasisDecision, detWorkers[0], refStats[i].BasisDecision)
			}
		}
	}

	// The workload is the cache's target case: the first tile leads, the
	// rest must actually reuse (accept or at worst warm-refine).
	reused := 0
	for i, st := range refStats {
		if st.BasisDecision == "" {
			t.Fatalf("field %d: no basis decision recorded with reuse on", i)
		}
		if st.BasisDecision == "accept" || st.BasisDecision == "refine" {
			reused++
		}
		// The quality guard's contract: whatever path was taken, the
		// achieved TVE meets the cold path's target.
		if o := dpz.LooseOptions(); st.TVEAchieved < o.TVE {
			t.Fatalf("field %d (%s): achieved TVE %v below target %v",
				i, st.BasisDecision, st.TVEAchieved, o.TVE)
		}
	}
	if reused < len(fields)/2 {
		t.Fatalf("only %d of %d near-identical tiles reused a basis", reused, len(fields))
	}

	// The archive must still decode to the right values.
	ar, err := dpz.OpenArchive(bytes.NewReader(ref), int64(len(ref)))
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range fields {
		data, dims, err := ar.DecompressFloat64(f.Name)
		if err != nil {
			t.Fatalf("field %d: %v", i, err)
		}
		if len(data) != len(f.Data) || dims[0] != f.Dims[0] {
			t.Fatalf("field %d: %d values, dims %v", i, len(data), dims)
		}
		if psnr := dpz.PSNR(f.Data, data); psnr < 50 {
			t.Fatalf("field %d: PSNR %v dB after reuse", i, psnr)
		}
	}
}

func TestBasisReuseBatchAllMissMatchesOff(t *testing.T) {
	// Genuinely dissimilar fields (different shapes → different keys):
	// every tile leads and fits cold, so the archive must be bit-identical
	// to the cache-off run.
	var fields []dpz.ArchiveField
	for i, rows := range []int{40, 48, 56, 64} {
		f := dataset.CESM(fmt.Sprintf("F%d", i), rows, 60, int64(300+i))
		fields = append(fields, dpz.ArchiveField{Name: f.Name, Data: f.Data, Dims: f.Dims})
	}
	off := dpz.LooseOptions()
	off.Workers = 2
	refBytes, _ := batchArchive(t, fields, off)

	on := off
	on.BasisReuse = true
	gotBytes, stats := batchArchive(t, fields, on)
	if !bytes.Equal(gotBytes, refBytes) {
		t.Fatal("all-miss reuse archive differs from the cache-off archive")
	}
	for i, st := range stats {
		if st.BasisDecision != "cold" {
			t.Fatalf("field %d: decision %q, want cold", i, st.BasisDecision)
		}
	}
}

func TestBasisReuseTiledWorkersByteIdentical(t *testing.T) {
	// One smooth field cut into many identical-shape row slabs: the tiled
	// pipeline's source acquires a cache handle per tile, so slabs after
	// the first reuse the leader's basis.
	f := dataset.CESM("CLDHGH", 96, 64, 5)
	raw := make([]byte, 4*f.Len())
	for i, v := range f.Data {
		binary.LittleEndian.PutUint32(raw[4*i:], math.Float32bits(float32(v)))
	}
	const tileRows = 8
	run := func(w int, cache *dpz.BasisCache) []byte {
		o := dpz.LooseOptions()
		o.Workers = w
		o.BasisReuse = true
		o.BasisCache = cache
		var buf bytes.Buffer
		if _, err := dpz.CompressTiled(bytes.NewReader(raw), f.Dims, tileRows, o, &buf); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		return buf.Bytes()
	}
	ref := run(detWorkers[0], nil)
	for _, w := range detWorkers[1:] {
		if !bytes.Equal(run(w, nil), ref) {
			t.Fatalf("workers=%d tiled archive differs with basis reuse on", w)
		}
	}

	// A caller-supplied cache must behave identically on first use and
	// report the expected hit pattern.
	cache := dpz.NewBasisCache(8)
	if !bytes.Equal(run(2, cache), ref) {
		t.Fatal("caller-supplied cache changed the archive bytes")
	}
	st := cache.Stats()
	if st.Misses == 0 || st.Hits == 0 {
		t.Fatalf("cache stats = %+v, want at least one miss (leader) and one hit", st)
	}

	// And the archive decodes like the reuse-off one reconstructs.
	o := dpz.LooseOptions()
	var offBuf bytes.Buffer
	if _, err := dpz.CompressTiled(bytes.NewReader(raw), f.Dims, tileRows, o, &offBuf); err != nil {
		t.Fatal(err)
	}
	readAll := func(b []byte) []float64 {
		tr, err := dpz.OpenTiled(bytes.NewReader(b), int64(len(b)))
		if err != nil {
			t.Fatal(err)
		}
		data, _, err := tr.ReadAllParallel(1)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	reuse, offRec := readAll(ref), readAll(offBuf.Bytes())
	if dpz.PSNR(f.Data, reuse) < 50 {
		t.Fatalf("reuse reconstruction PSNR %v dB", dpz.PSNR(f.Data, reuse))
	}
	// Reuse may pick a different (guard-approved) basis than the cold fit,
	// so reconstructions need not be bitwise equal — but both must honor
	// the same error bound.
	if offPSNR, rePSNR := dpz.PSNR(f.Data, offRec), dpz.PSNR(f.Data, reuse); rePSNR < offPSNR-3 {
		t.Fatalf("reuse PSNR %v dB much worse than cold %v dB", rePSNR, offPSNR)
	}
}

func TestBasisReuseSingleCompressUsesCache(t *testing.T) {
	f := dataset.CESM("CLDHGH", 64, 64, 11)
	o := dpz.LooseOptions()
	ref, err := dpz.CompressFloat64(f.Data, f.Dims, o)
	if err != nil {
		t.Fatal(err)
	}

	cache := dpz.NewBasisCache(4)
	o.BasisReuse = true
	o.BasisCache = cache
	first, err := dpz.CompressFloat64(f.Data, f.Dims, o)
	if err != nil {
		t.Fatal(err)
	}
	// First use is an all-miss leader: cold path, bit-identical stream.
	if !bytes.Equal(first.Data, ref.Data) {
		t.Fatal("first cache-on compress differs from cache-off")
	}
	if first.Stats.BasisDecision != "cold" {
		t.Fatalf("first decision %q, want cold", first.Stats.BasisDecision)
	}
	second, err := dpz.CompressFloat64(f.Data, f.Dims, o)
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.BasisDecision != "accept" {
		t.Fatalf("second decision %q, want accept for identical data", second.Stats.BasisDecision)
	}
	if second.Stats.TVEAchieved < o.TVE {
		t.Fatalf("accepted fit achieved TVE %v below target %v", second.Stats.TVEAchieved, o.TVE)
	}
	st := cache.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Inserts != 1 {
		t.Fatalf("cache stats = %+v, want 1 miss / 1 hit / 1 insert", st)
	}
}

// BenchmarkTiledBasisReuse measures the tiled pipeline over a tall
// smooth field with the cross-tile basis cache on and off; CI's
// benchmark-smoke job runs it for one iteration as an end-to-end check
// of the reuse path.
func BenchmarkTiledBasisReuse(b *testing.B) {
	f := dataset.CESM("CLDHGH", 512, 128, 7)
	raw := make([]byte, 4*f.Len())
	for i, v := range f.Data {
		binary.LittleEndian.PutUint32(raw[4*i:], math.Float32bits(float32(v)))
	}
	for _, reuse := range []bool{false, true} {
		name := "off"
		if reuse {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			o := dpz.LooseOptions()
			o.BasisReuse = reuse
			b.SetBytes(int64(len(raw)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := dpz.CompressTiled(bytes.NewReader(raw), f.Dims, 32, o, discard{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// discard is an io.Writer that drops everything (io.Discard without the
// import churn in this test file's header).
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
