package dpz

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseDims parses a dimension string like "1800x3600" (slowest dimension
// first, 1-4 components) into a dims slice. The dpz CLI and the dpzd
// server share this parser so a dims string means the same field shape
// everywhere.
func ParseDims(s string) ([]int, error) {
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) < 1 || len(parts) > 4 {
		return nil, fmt.Errorf("dims %q must have 1-4 components", s)
	}
	dims := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad dimension %q in %q", p, s)
		}
		dims[i] = v
	}
	return dims, nil
}

// OptionSpec is a flat, string-valued description of Options. It is the
// single translation point between user-facing knobs and Options: the dpz
// CLI flags and the dpzd request parameters both build their Options
// through it, which is what guarantees a server compression is
// byte-identical to the CLI's for the same knob settings.
//
// The zero value means "defaults": strict scheme, TVE selection at
// "five-nine", 1-D knee fit, no sampling, automatic workers, default zlib
// level.
type OptionSpec struct {
	// Scheme is the quantization scheme: "loose" (P=1e-3, 1-byte indices)
	// or "strict" (P=1e-4, 2-byte). Empty means strict.
	Scheme string
	// Select is the k-selection method: "tve" or "knee". Empty means tve.
	Select string
	// TVENines is the TVE threshold as a count of nines (3..8 in the
	// paper; 1..12 accepted). 0 means 5 ("five-nine").
	TVENines int
	// Fit is the knee curve fit: "1d" or "polyn". Empty means 1d.
	Fit string
	// Sampling enables the Algorithm 2 sampling strategy.
	Sampling bool
	// Workers bounds goroutine parallelism (0 = GOMAXPROCS).
	Workers int
	// ZLevel sets the zlib add-on level 1-9 (0 = zlib default).
	ZLevel int
	// BasisReuse enables the cross-tile PCA basis cache: similar tiles
	// reuse or warm-start from an earlier tile's basis after a quality
	// guard verifies the TVE target still holds.
	BasisReuse bool
	// PCA selects the Stage 2 eigensolve engine: "exact" (the cold
	// covariance eigensolve, bit-identical to previous releases) or
	// "sketch" (the randomized range-finder fast path, verified by the
	// exact variance guard before adoption). Empty means exact.
	PCA string
	// Index controls the trailing retrieval-index section: "on" (format
	// v3 with per-tile summaries, the default) or "off" (format v2,
	// byte-identical to earlier releases). Empty means on.
	Index string
}

// Options resolves the spec into an Options value, or reports the first
// invalid knob.
func (s OptionSpec) Options() (Options, error) {
	var o Options
	scheme := s.Scheme
	if scheme == "" {
		scheme = "strict"
	}
	switch strings.ToLower(scheme) {
	case "loose":
		o = LooseOptions()
	case "strict":
		o = StrictOptions()
	default:
		return o, fmt.Errorf("unknown scheme %q (loose|strict)", s.Scheme)
	}
	sel := s.Select
	if sel == "" {
		sel = "tve"
	}
	switch strings.ToLower(sel) {
	case "tve":
		o.Selection = TVEThreshold
	case "knee":
		o.Selection = KneePoint
	default:
		return o, fmt.Errorf("unknown selection %q (tve|knee)", s.Select)
	}
	nines := s.TVENines
	if nines == 0 {
		nines = 5
	}
	if nines < 1 || nines > 12 {
		return o, fmt.Errorf("tve nines %d out of range", s.TVENines)
	}
	o.TVE = Nines(nines)
	fit := s.Fit
	if fit == "" {
		fit = "1d"
	}
	switch strings.ToLower(fit) {
	case "1d":
		o.Fit = FitLinear
	case "polyn":
		o.Fit = FitPoly
	default:
		return o, fmt.Errorf("unknown fit %q (1d|polyn)", s.Fit)
	}
	o.UseSampling = s.Sampling
	if s.Workers < 0 {
		return o, fmt.Errorf("workers %d negative", s.Workers)
	}
	o.Workers = s.Workers
	if s.ZLevel < 0 || s.ZLevel > 9 {
		return o, fmt.Errorf("zlevel %d out of [0,9]", s.ZLevel)
	}
	o.ZLevel = s.ZLevel
	o.BasisReuse = s.BasisReuse
	engine := s.PCA
	if engine == "" {
		engine = "exact"
	}
	switch strings.ToLower(engine) {
	case "exact":
		o.SketchPCA = false
	case "sketch":
		o.SketchPCA = true
	default:
		return o, fmt.Errorf("unknown pca engine %q (exact|sketch)", s.PCA)
	}
	index := s.Index
	if index == "" {
		index = "on"
	}
	switch strings.ToLower(index) {
	case "on":
		o.NoIndex = false
	case "off":
		o.NoIndex = true
	default:
		return o, fmt.Errorf("unknown index mode %q (on|off)", s.Index)
	}
	return o, nil
}
