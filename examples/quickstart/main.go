// Quickstart: compress a 2-D scientific field with DPZ, inspect the
// per-stage statistics, decompress and verify the reconstruction quality.
package main

import (
	"fmt"
	"log"

	"dpz"
	"dpz/internal/dataset"
)

func main() {
	// A synthetic CESM-like climate field (stand-in for the paper's
	// FLDSC variable). Any []float32 / []float64 with row-major dims
	// works the same way.
	field := dataset.CESM("FLDSC", 180, 360, 42)

	// DPZ-s: the strict scheme (P = 1e-4, 2-byte bin indices), keeping
	// principal components until 99.999% of the variance is explained.
	opts := dpz.StrictOptions()
	opts.TVE = dpz.Nines(5)

	res, err := dpz.CompressFloat64(field.Data, field.Dims, opts)
	if err != nil {
		log.Fatal(err)
	}
	s := res.Stats
	fmt.Printf("input:        %d values %v (%d bytes as float32)\n", field.Len(), field.Dims, s.OrigBytes)
	fmt.Printf("compressed:   %d bytes  (CR %.2fx, %.3f bits/value)\n",
		s.CompressedBytes, s.CRTotal, dpz.BitRate(s.CRTotal, 32))
	fmt.Printf("block layout: %d blocks x %d points, k = %d components (TVE %.7f)\n",
		s.Blocks, s.BlockLen, s.K, s.TVEAchieved)
	fmt.Printf("stage CRs:    stage1&2 %.2fx, stage3 %.2fx, zlib %.2fx\n",
		s.CRStage12, s.CRStage3, s.CRZlib)

	recon, dims, err := dpz.DecompressFloat64(res.Data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decompressed: %d values %v\n", len(recon), dims)
	fmt.Printf("quality:      PSNR %.2f dB, mean relative error %.3g, max abs error %.3g\n",
		dpz.PSNR(field.Data, recon),
		dpz.MeanRelativeError(field.Data, recon),
		dpz.MaxAbsError(field.Data, recon))
}
