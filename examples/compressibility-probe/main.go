// Compressibility probe: DPZ's sampling strategy as a stand-alone
// analysis tool. Before committing cluster hours to compressing a
// petabyte-scale campaign, probe each dataset: the VIF indicator predicts
// which data DPZ compresses well (the paper's Figure 10 / Section V-C6),
// and the CR_p band predicts what ratio to expect. The probe then runs the
// real compression to show where the prediction landed.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"dpz"
	"dpz/internal/dataset"
)

func main() {
	names := []string{"PHIS", "FLDSC", "Isotropic", "HACC-x", "HACC-vx"}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\tmean VIF\tverdict\testimated k\tpredicted CR\tachieved CR\tin band?")

	opts := dpz.StrictOptions()
	opts.TVE = dpz.Nines(5)
	opts.UseSampling = true

	for _, name := range names {
		f, err := dataset.Generate(name, 0.06)
		if err != nil {
			log.Fatal(err)
		}

		est, err := dpz.EstimateCompressionFloat64(f.Data, f.Dims, opts)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "compressible"
		if est.LowLinearity {
			verdict = "poor (VIF<5)"
		}

		res, err := dpz.CompressFloat64(f.Data, f.Dims, opts)
		if err != nil {
			log.Fatal(err)
		}
		cr := res.Stats.CRTotal
		in := cr >= est.CRLow && cr <= est.CRHigh
		fmt.Fprintf(tw, "%s\t%.1f\t%s\t%d\t%.1f–%.1fx\t%.2fx\t%v\n",
			name, est.MeanVIF, verdict, est.Ke, est.CRLow, est.CRHigh, cr, in)
	}
	tw.Flush()
	fmt.Println("\nhigh-VIF datasets are DPZ's territory; VIF<5 says use a")
	fmt.Println("prediction-based compressor (SZ) for that data instead.")
}
