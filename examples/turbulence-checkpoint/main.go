// Turbulence checkpoint: the JHTDB-style scenario. A solver periodically
// checkpoints a 3-D velocity field; DPZ with knee-point detection picks
// the compression ratio automatically (no error-bound tuning), and the
// restart path verifies that the physics the analysis cares about — the
// total kinetic energy and the large-scale structure — survives.
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"text/tabwriter"

	"dpz"
	"dpz/internal/dataset"
)

// energy returns the mean squared value (∝ kinetic energy density of one
// velocity component).
func energy(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return s / float64(len(v))
}

func main() {
	const steps = 4
	opts := dpz.StrictOptions()
	opts.Selection = dpz.KneePoint // parameter-free, CR-oriented
	opts.Fit = dpz.FitPoly         // the accuracy-leaning fit

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "step\tk\tCR\tPSNR(dB)\tenergy drift\tcheckpoint bytes")

	var totalBytes int
	for step := 0; step < steps; step++ {
		// Each "timestep" is a differently-seeded realization of the
		// isotropic turbulence cube (a real solver would hand over its
		// state here).
		f := dataset.Isotropic(32, int64(7000+step))

		res, err := dpz.CompressFloat64(f.Data, f.Dims, opts)
		if err != nil {
			log.Fatal(err)
		}
		totalBytes += len(res.Data)

		// Restart path: decode and check the physics.
		recon, dims, err := dpz.DecompressFloat64(res.Data)
		if err != nil {
			log.Fatal(err)
		}
		if len(dims) != 3 {
			log.Fatalf("checkpoint dims corrupted: %v", dims)
		}
		e0, e1 := energy(f.Data), energy(recon)
		drift := math.Abs(e1-e0) / e0
		fmt.Fprintf(tw, "%d\t%d\t%.1fx\t%.2f\t%.3g\t%d\n",
			step, res.Stats.K, res.Stats.CRTotal,
			dpz.PSNR(f.Data, recon), drift, len(res.Data))

		if drift > 0.05 {
			log.Fatalf("step %d: kinetic energy drifted by %.1f%%", step, 100*drift)
		}
	}
	tw.Flush()
	fmt.Printf("\n%d checkpoints in %.2f MB total (raw would be %.2f MB)\n",
		steps, float64(totalBytes)/(1<<20), float64(steps*4*32*32*32)/(1<<20))
}
