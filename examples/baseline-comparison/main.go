// Baseline comparison: run every compressor family in the repository —
// DPZ (both schemes), SZ (prediction), ZFP (transform + bit planes), DCTZ
// (DPZ's predecessor), MGARD (multigrid) and TTHRESH (tensor) — on the
// same field at comparable settings and print the rate-distortion panel.
// A one-command miniature of the paper's Figure 6.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"text/tabwriter"

	"dpz/internal/compare"
	"dpz/internal/dataset"
)

func main() {
	name := "FLDSC"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	f, err := dataset.Generate(name, 0.08)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s %v (%d values)\n\n", f.Name, f.Dims, f.Len())

	pts, err := compare.Sweep(compare.DefaultPanel(), f.Data, f.Dims)
	if err != nil {
		log.Fatal(err)
	}
	// Best compression first.
	sort.Slice(pts, func(i, j int) bool { return pts[i].CR > pts[j].CR })

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "compressor\tsetting\tCR\tbits/value\tPSNR(dB)\tmax |err|\tcompress\tdecompress")
	for _, p := range pts {
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%.3f\t%.2f\t%.3g\t%v\t%v\n",
			p.Codec, p.Setting, p.CR, p.BitRate, p.PSNR, p.MaxAbsError,
			p.CompressTime.Round(100_000), p.DecompressTime.Round(100_000))
	}
	tw.Flush()
	fmt.Println("\nnote: settings are representative, not matched operating")
	fmt.Println("points; run cmd/dpzbench -exp fig6 for the full sweep.")
}
