// Climate archive: the CESM-ATM scenario from the paper's introduction. A
// climate model emits many 2-D diagnostic fields per timestep; archiving
// them all quickly exceeds the storage budget. This example probes each
// field with DPZ's sampling strategy first (Algorithm 2), picks
// compression parameters from the VIF compressibility verdict, packs
// every field into a single DPZ archive file, and verifies random access
// reads back each field.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"text/tabwriter"

	"dpz"
	"dpz/internal/dataset"
)

func main() {
	dir, err := os.MkdirTemp("", "dpz-archive-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "campaign.dpza")
	out, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}

	aw, err := dpz.NewArchiveWriter(out)
	if err != nil {
		log.Fatal(err)
	}

	fields := []string{"CLDHGH", "CLDLOW", "PHIS", "FREQSH", "FLDSC"}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "field\tmean VIF\tpredicted CR\tscheme\tactual CR")

	generated := map[string]*dataset.Field{}
	var totalIn, totalOut int
	for i, name := range fields {
		f := dataset.CESM(name, 180, 360, int64(100+i))
		generated[name] = f

		// Probe before compressing: the estimate is cheap (it analyzes 3
		// of 10 row subsets) and tells us what to expect.
		est, err := dpz.EstimateCompressionFloat64(f.Data, f.Dims, dpz.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}

		// Parameter policy: highly collinear fields afford the loose
		// scheme at a tight TVE; low-linearity fields get the strict
		// quantizer so Stage 3 does not dominate the error.
		var opts dpz.Options
		var scheme string
		if est.LowLinearity {
			opts = dpz.StrictOptions()
			opts.TVE = dpz.Nines(4)
			scheme = "DPZ-s"
		} else {
			opts = dpz.LooseOptions()
			opts.TVE = dpz.Nines(5)
			scheme = "DPZ-l"
		}
		opts.UseSampling = true

		st, err := aw.CompressFloat64(name, f.Data, f.Dims, opts)
		if err != nil {
			log.Fatal(err)
		}
		totalIn += st.OrigBytes
		totalOut += st.CompressedBytes
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f–%.1fx\t%s\t%.2fx\n",
			name, est.MeanVIF, est.CRLow, est.CRHigh, scheme, st.CRTotal)
	}
	if err := aw.Close(); err != nil {
		log.Fatal(err)
	}
	if err := out.Close(); err != nil {
		log.Fatal(err)
	}
	tw.Flush()

	// Restart path: open the archive and randomly access every field.
	in, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer in.Close()
	info, err := in.Stat()
	if err != nil {
		log.Fatal(err)
	}
	ar, err := dpz.OpenArchive(in, info.Size())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\narchive %s: %d fields, %.2f MB -> %.2f MB (%.2fx overall)\n",
		filepath.Base(path), ar.Len(),
		float64(totalIn)/(1<<20), float64(totalOut)/(1<<20),
		float64(totalIn)/float64(totalOut))
	for _, name := range ar.Fields() {
		recon, dims, err := ar.DecompressFloat64(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-7s %v read back, PSNR %.2f dB\n",
			name, dims, dpz.PSNR(generated[name].Data, recon))
	}
}
