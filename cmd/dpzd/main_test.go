package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncLog collects run()'s log lines under a lock so the test can poll
// for the listen address without racing the serve goroutine.
type syncLog struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *syncLog) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *syncLog) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}, io.Discard); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestBadAddr(t *testing.T) {
	if err := run([]string{"-addr", "999.999.999.999:1"}, io.Discard); err == nil {
		t.Fatal("bad address accepted")
	}
}

// TestServeAndSigterm boots the daemon on an ephemeral port, checks it
// answers, then delivers SIGTERM to the process and expects a clean
// drained exit — the process-level version of the server drain test.
func TestServeAndSigterm(t *testing.T) {
	log := &syncLog{}
	done := make(chan error, 1)
	go func() { done <- run([]string{"-addr", "127.0.0.1:0", "-grace", "10s"}, log) }()

	addrRe := regexp.MustCompile(`listening on (\S+)`)
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if m := addrRe.FindStringSubmatch(log.String()); m != nil {
			addr = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never logged its address; log so far: %q", log.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	r, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", r.StatusCode)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("sending SIGTERM: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
}
