// Command dpzd serves the DPZ compressor over HTTP: streaming
// /v1/compress and /v1/decompress backed by a bounded job scheduler,
// /v1/stat metadata inspection, /healthz, Prometheus /metrics and
// net/http/pprof under /debug/pprof/.
//
// Usage:
//
//	dpzd -addr :8640 -jobs 4 -workers 8 -queue 32
//	curl -X POST --data-binary @field.f32 'localhost:8640/v1/compress?dims=1800x3600' -o field.dpz
//	curl -X POST --data-binary @field.dpz localhost:8640/v1/decompress -o recon.f32
//
// On SIGTERM or SIGINT the daemon stops accepting connections, drains
// in-flight and queued requests (shedding new ones with 429), and exits
// once the drain completes or the grace period runs out.
//
// The read-only decode endpoints (/v1/preview, /v1/query, /v1/stat) are
// answered from a bounded LRU response cache with strong ETags and
// If-None-Match 304s; size it with -cache-entries / -cache-bytes, or
// disable it with -cache-entries=-1.
//
// Resilience: 429 responses carry a load-proportional Retry-After
// computed from the observed per-job service time and current queue
// depth; request panics are recovered per-request (500 +
// dpzd_panics_total) so one poisoned input never takes the daemon down.
// The dpz/client package speaks this protocol — retries with jittered
// backoff honoring Retry-After, optional hedging; see docs/SERVER.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dpz/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "dpzd: %v\n", err)
		os.Exit(1)
	}
}

// run configures and serves the daemon until the listener fails or a
// shutdown signal arrives. log receives the startup/shutdown lines.
func run(args []string, log io.Writer) error {
	fs := flag.NewFlagSet("dpzd", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8640", "listen address")
		jobs         = fs.Int("jobs", 0, "concurrently executing requests (0 = GOMAXPROCS)")
		workers      = fs.Int("workers", 0, "total worker-goroutine budget shared by executing jobs (0 = GOMAXPROCS)")
		queue        = fs.Int("queue", 0, "admitted requests waiting beyond -jobs (0 = default 16, <0 = none)")
		maxBody      = fs.Int64("max-body", 0, "request body cap in bytes (0 = 1 GiB)")
		timeout      = fs.Duration("timeout", 0, "per-request compute deadline (0 = 5m, <0 = none)")
		grace        = fs.Duration("grace", 30*time.Second, "shutdown drain budget")
		basisCache   = fs.Int("basis-cache", 0, "shared PCA basis cache entries for basis-reuse requests (0 = default 64, <0 = off)")
		cacheEntries = fs.Int("cache-entries", 0, "preview/query/stat response cache entries (0 = default 256, <0 = off)")
		cacheBytes   = fs.Int64("cache-bytes", 0, "response cache body-byte bound (0 = default 256 MiB)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv := server.New(server.Config{
		Jobs:              *jobs,
		Workers:           *workers,
		QueueDepth:        *queue,
		MaxBodyBytes:      *maxBody,
		RequestTimeout:    *timeout,
		BasisCacheEntries: *basisCache,
		CacheEntries:      *cacheEntries,
		CacheBytes:        *cacheBytes,
	})
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()

	errc := make(chan error, 1)
	fmt.Fprintf(log, "dpzd: listening on %s\n", ln.Addr())
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	fmt.Fprintf(log, "dpzd: shutting down, draining for up to %s\n", *grace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	// Stop accepting connections and wait for handlers, then stop the
	// worker pool. Both share the grace budget.
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := srv.Drain(shutdownCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(log, "dpzd: drained, bye")
	return nil
}
