// Command dpzbench regenerates the paper's tables and figures. Each
// experiment prints the rows/series the paper reports; Figure 7 also emits
// PGM visualizations when -artifacts is set.
//
// Usage:
//
//	dpzbench -list
//	dpzbench -exp fig6 -scale 0.1
//	dpzbench -exp all -scale 0.08 -artifacts out/
//	dpzbench -json -scale 1 -cpuprofile cpu.pprof
//	dpzbench -json -scale 1 -baseline BENCH_<rev>.json -max-regress 10
//	dpzbench -server http://localhost:8640 -requests 32 -conc 4
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"dpz/internal/experiments"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment to run (see -list) or 'all'")
		scale      = flag.Float64("scale", 0.08, "dataset scale relative to the paper's native sizes (0,1]")
		workers    = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		artifacts  = flag.String("artifacts", "", "directory for image artifacts (fig7)")
		list       = flag.Bool("list", false, "list experiments and exit")
		jsonOut    = flag.Bool("json", false, "run the perf suite instead of experiments; write BENCH_<rev>.json")
		note       = flag.String("note", "", "free-form note recorded in the -json report")
		baseline   = flag.String("baseline", "", "with -json: gate the run against this BENCH_<rev>.json; exit non-zero on regression")
		maxRegress = flag.Float64("max-regress", 10, "with -baseline: allowed slowdown percent per record/stage")
		forceWork  = flag.Bool("force-workers", false, "with -json: keep worker counts above NumCPU in the sweep (skipped by default)")
		repeat     = flag.Int("repeat", 1, "with -json: run each benchmark N times and record the median by ns/op (damps run-to-run drift on small hosts)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile at exit to this file")
		server     = flag.String("server", "", "smoke-benchmark a running dpzd at this base URL instead of running experiments")
		requests   = flag.Int("requests", 32, "with -server: total compress requests")
		conc       = flag.Int("conc", 4, "with -server: concurrent clients")
		benchDims  = flag.String("bench-dims", "64x64", "with -server: field dims per request")
	)
	flag.Parse()

	if *server != "" {
		if err := runServerSmoke(*server, *requests, *conc, *benchDims, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "dpzbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, r := range experiments.Runners() {
			fmt.Printf("%-10s %s\n", r.Name, r.Title)
		}
		return
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dpzbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "dpzbench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dpzbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "dpzbench: %v\n", err)
			}
		}()
	}
	if *jsonOut {
		var ws []int
		if *workers > 0 {
			ws = []int{*workers}
		}
		var notes []string
		if *note != "" {
			notes = append(notes, *note)
		}
		if err := runPerfSuite(*scale, ws, notes, *baseline, *maxRegress, *forceWork, *repeat, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "dpzbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *artifacts != "" {
		if err := os.MkdirAll(*artifacts, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "dpzbench: %v\n", err)
			os.Exit(1)
		}
	}
	cfg := experiments.Config{
		Scale:       *scale,
		Workers:     *workers,
		Out:         os.Stdout,
		ArtifactDir: *artifacts,
	}

	var runners []experiments.Runner
	if *exp == "all" {
		runners = experiments.Runners()
	} else {
		r, ok := experiments.Lookup(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "dpzbench: unknown experiment %q; known: %v\n", *exp, experiments.Names())
			os.Exit(2)
		}
		runners = []experiments.Runner{r}
	}

	for _, r := range runners {
		fmt.Printf("\n===== %s: %s (scale %g) =====\n", r.Name, r.Title, *scale)
		t0 := time.Now()
		if err := r.Run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "dpzbench: %s: %v\n", r.Name, err)
			os.Exit(1)
		}
		fmt.Printf("----- %s done in %v -----\n", r.Name, time.Since(t0).Round(time.Millisecond))
	}
}
