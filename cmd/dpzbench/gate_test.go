package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, dir string, rep perfReport) string {
	t.Helper()
	doc, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "BENCH_base.json")
	if err := os.WriteFile(path, doc, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func benchRecord(name string, workers int, ns int64, stages *stageNs) perfRecord {
	return perfRecord{Name: name, Workers: workers, NsPerOp: ns, StageNs: stages}
}

func TestGatePassesWithinBudget(t *testing.T) {
	base := perfReport{Records: []perfRecord{
		benchRecord("compress", 1, 1_000_000_000, &stageNs{PCA: 700_000_000, Total: 1_000_000_000}),
	}}
	cur := perfReport{Records: []perfRecord{
		benchRecord("compress", 1, 1_050_000_000, &stageNs{PCA: 730_000_000, Total: 1_050_000_000}),
	}}
	path := writeReport(t, t.TempDir(), base)
	if err := compareBaseline(path, cur, 10, io.Discard); err != nil {
		t.Fatalf("5%% slowdown under a 10%% budget must pass: %v", err)
	}
}

func TestGateFailsOnNsPerOpRegression(t *testing.T) {
	base := perfReport{Records: []perfRecord{benchRecord("compress", 1, 1_000_000_000, nil)}}
	cur := perfReport{Records: []perfRecord{benchRecord("compress", 1, 1_300_000_000, nil)}}
	path := writeReport(t, t.TempDir(), base)
	err := compareBaseline(path, cur, 10, io.Discard)
	if err == nil {
		t.Fatal("30% ns/op regression must fail a 10% gate")
	}
	if !strings.Contains(err.Error(), "compress w1 ns/op") {
		t.Fatalf("error should name the offender, got: %v", err)
	}
}

func TestGateFailsOnStageRegression(t *testing.T) {
	// ns/op flat, but the pca stage blew up — the exact regression shape
	// the gate exists for.
	base := perfReport{Records: []perfRecord{
		benchRecord("compress", 1, 1_000_000_000, &stageNs{PCA: 500_000_000, Total: 1_000_000_000}),
	}}
	cur := perfReport{Records: []perfRecord{
		benchRecord("compress", 1, 1_000_000_000, &stageNs{PCA: 900_000_000, Total: 1_000_000_000}),
	}}
	path := writeReport(t, t.TempDir(), base)
	err := compareBaseline(path, cur, 10, io.Discard)
	if err == nil {
		t.Fatal("80% pca-stage regression must fail a 10% gate")
	}
	if !strings.Contains(err.Error(), "stage pca") {
		t.Fatalf("error should name the pca stage, got: %v", err)
	}
}

func TestGateIgnoresNoiseStagesAndNewRecords(t *testing.T) {
	base := perfReport{Records: []perfRecord{
		// decompose is below the 50ms floor: tripling it is clock noise.
		benchRecord("compress", 1, 1_000_000_000, &stageNs{Decompose: 1_000_000, Total: 1_000_000_000}),
	}}
	cur := perfReport{Records: []perfRecord{
		benchRecord("compress", 1, 1_000_000_000, &stageNs{Decompose: 3_000_000, Total: 1_000_000_000}),
		benchRecord("compress-lowrank-sketch", 1, 900_000_000, nil), // new in this revision
	}}
	path := writeReport(t, t.TempDir(), base)
	if err := compareBaseline(path, cur, 10, io.Discard); err != nil {
		t.Fatalf("sub-floor stages and unmatched records must not gate: %v", err)
	}
}

func TestGateWorstOffenderSortsFirst(t *testing.T) {
	base := &perfReport{Records: []perfRecord{
		benchRecord("a", 1, 1_000, nil),
		benchRecord("b", 1, 1_000, nil),
	}}
	cur := &perfReport{Records: []perfRecord{
		benchRecord("a", 1, 1_100, nil),
		benchRecord("b", 1, 2_000, nil),
	}}
	deltas := gateDeltas(base, cur)
	if len(deltas) != 2 || deltas[0].Name != "b w1 ns/op" {
		t.Fatalf("worst offender must sort first, got %+v", deltas)
	}
}

func TestGateMissingBaselineFile(t *testing.T) {
	err := compareBaseline(filepath.Join(t.TempDir(), "nope.json"), perfReport{}, 10, io.Discard)
	if err == nil {
		t.Fatal("missing baseline file must error")
	}
}
