package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"dpz"
	"dpz/internal/metrics"
)

// runServerSmoke drives a running dpzd daemon with concurrent compress
// requests and reports request throughput and latency quantiles — the
// client side of the CI benchmark-smoke job and a quick way to size a
// deployment. It finishes with one decompress round-trip to check the
// daemon's output is a valid stream, plus a repeated rank-1 preview that
// must come back byte-identical from the daemon's response cache.
//
// Shed requests (429) are retried after the server's Retry-After hint, so
// the reported throughput is the end-to-end rate a well-behaved client
// sees, with the shed count reported separately.
func runServerSmoke(baseURL string, requests, conc int, dimsStr string, out io.Writer) error {
	if requests < 1 || conc < 1 {
		return fmt.Errorf("need positive -requests and -conc, got %d/%d", requests, conc)
	}
	dims, err := dpz.ParseDims(dimsStr)
	if err != nil {
		return err
	}
	values := 1
	for _, d := range dims {
		values *= d
	}
	raw := make([]byte, 4*values)
	for i := 0; i < values; i++ {
		v := float32(math.Sin(float64(i)/23) * math.Cos(float64(i)/71))
		binary.LittleEndian.PutUint32(raw[4*i:], math.Float32bits(v))
	}

	r, err := http.Get(baseURL + "/healthz")
	if err != nil {
		return fmt.Errorf("daemon not reachable: %w", err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz returned %d", r.StatusCode)
	}

	lat := metrics.NewRegistry().Histogram("latency_seconds", "", metrics.LatencyBuckets)
	var ok, failed, shed atomic.Uint64
	var outBytes atomic.Uint64
	url := baseURL + "/v1/compress?dims=" + dimsStr + "&scheme=loose&tve=4"

	next := make(chan int)
	go func() {
		for i := 0; i < requests; i++ {
			next <- i
		}
		close(next)
	}()
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range next {
				t0 := time.Now()
				body, code, err := doCompress(url, raw)
				for attempt := 0; err == nil && code == http.StatusTooManyRequests && attempt < 50; attempt++ {
					shed.Add(1)
					time.Sleep(100 * time.Millisecond)
					body, code, err = doCompress(url, raw)
				}
				if err != nil || code != http.StatusOK {
					failed.Add(1)
					continue
				}
				lat.Observe(time.Since(t0).Seconds())
				ok.Add(1)
				outBytes.Add(uint64(len(body)))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	if failed.Load() > 0 {
		return fmt.Errorf("%d of %d requests failed", failed.Load(), requests)
	}

	// One round-trip through /v1/decompress proves the daemon's streams
	// decode back to the right shape.
	stream, code, err := doCompress(url, raw)
	if err != nil {
		return fmt.Errorf("round-trip compress: %w", err)
	}
	if code != http.StatusOK {
		return fmt.Errorf("round-trip compress: code %d", code)
	}
	resp, err := http.Post(baseURL+"/v1/decompress", "application/octet-stream", bytes.NewReader(stream))
	if err != nil {
		return fmt.Errorf("round-trip decompress: %w", err)
	}
	recon, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("round-trip decompress: code %d: %s", resp.StatusCode, recon)
	}
	if len(recon) != len(raw) {
		return fmt.Errorf("round-trip returned %d bytes, want %d", len(recon), len(raw))
	}

	// Preview cache probe: the identical rank-1 preview request twice in a
	// row. The first answer decodes (X-Dpz-Cache: miss); the repeat must be
	// served from the daemon's response cache (hit) with byte-identical
	// bytes — unless the daemon runs with -cache-entries=-1, which reports
	// bypass on both and is only required to stay byte-identical.
	doPreview := func() ([]byte, string, time.Duration, error) {
		t0 := time.Now()
		resp, err := http.Post(baseURL+"/v1/preview?ranks=1", "application/octet-stream", bytes.NewReader(stream))
		if err != nil {
			return nil, "", 0, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, "", 0, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, "", 0, fmt.Errorf("preview: code %d: %s", resp.StatusCode, body)
		}
		return body, resp.Header.Get("X-Dpz-Cache"), time.Since(t0), nil
	}
	coldBody, coldState, coldDur, err := doPreview()
	if err != nil {
		return err
	}
	warmBody, warmState, warmDur, err := doPreview()
	if err != nil {
		return err
	}
	if !bytes.Equal(coldBody, warmBody) {
		return fmt.Errorf("preview cache: repeated request returned different bytes (%d vs %d)", len(coldBody), len(warmBody))
	}
	if coldState != "bypass" && warmState != "hit" {
		return fmt.Errorf("preview cache: repeat request not served from cache (X-Dpz-Cache %q then %q)", coldState, warmState)
	}

	inMB := float64(requests) * float64(len(raw)) / (1 << 20)
	fmt.Fprintf(out, "dpzd smoke: %d requests x %d values (%s), conc %d\n",
		requests, values, dimsStr, conc)
	fmt.Fprintf(out, "  ok %d, shed-retries %d, elapsed %v\n", ok.Load(), shed.Load(), elapsed.Round(time.Millisecond))
	fmt.Fprintf(out, "  throughput: %.1f req/s, %.1f MB/s in\n",
		float64(requests)/elapsed.Seconds(), inMB/elapsed.Seconds())
	fmt.Fprintf(out, "  latency: p50 %s  p90 %s  p99 %s\n",
		fmtSeconds(lat.Quantile(0.5)), fmtSeconds(lat.Quantile(0.9)), fmtSeconds(lat.Quantile(0.99)))
	fmt.Fprintf(out, "  mean compressed size: %.0f bytes (CR %.2fx)\n",
		float64(outBytes.Load())/float64(max(ok.Load(), 1)),
		float64(len(raw))*float64(ok.Load())/float64(max(outBytes.Load(), 1)))
	fmt.Fprintf(out, "  preview cache: %s %s -> %s %s\n",
		coldState, coldDur.Round(100*time.Microsecond), warmState, warmDur.Round(100*time.Microsecond))
	fmt.Fprintln(out, "dpzd smoke: OK")
	return nil
}

func doCompress(url string, raw []byte) ([]byte, int, error) {
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	return body, resp.StatusCode, nil
}

func fmtSeconds(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(100 * time.Microsecond).String()
}
