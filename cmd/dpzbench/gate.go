package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// The -baseline regression gate: compare a fresh perf report against a
// recorded BENCH_<rev>.json and fail (non-zero exit) when any matching
// record slowed down by more than -max-regress percent. The gate compares
// the benchmark's ns/op and, when both reports carry a stage breakdown,
// each per-stage wall time — so a regression hiding inside one stage
// (the PCA wall this suite exists to watch, or the recompose GEMM on the
// decode side) trips the gate even when the other stages mask it in the
// total.

// gateStageFloorNs is the baseline stage time below which a stage is not
// gated: percentage deltas of sub-50ms stages are clock noise, not
// regressions.
const gateStageFloorNs = 50_000_000

// gateDelta is one gated comparison's outcome.
type gateDelta struct {
	Name    string  // "<record> w<workers> <metric>"
	Old     int64   // baseline nanoseconds
	New     int64   // current nanoseconds
	Percent float64 // (new-old)/old * 100
}

// loadBaseline reads a previously written BENCH_<rev>.json.
func loadBaseline(path string) (*perfReport, error) {
	doc, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep perfReport
	if err := json.Unmarshal(doc, &rep); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return &rep, nil
}

// compareBaseline gates report against the baseline at path: every
// record present in both (matched by name + workers) must not have
// slowed by more than maxRegress percent, on ns/op or on any sufficiently
// large stage. Faster-or-equal records pass silently; missing records on
// either side are ignored (suites grow across revisions). The returned
// error lists every offender.
func compareBaseline(path string, report perfReport, maxRegress float64, out io.Writer) error {
	base, err := loadBaseline(path)
	if err != nil {
		return err
	}
	deltas := gateDeltas(base, &report)
	var offenders []gateDelta
	for _, d := range deltas {
		status := "ok"
		if d.Percent > maxRegress {
			status = "REGRESSION"
			offenders = append(offenders, d)
		}
		fmt.Fprintf(out, "gate %-40s %12d -> %12d ns  %+7.1f%%  %s\n",
			d.Name, d.Old, d.New, d.Percent, status)
	}
	if len(offenders) > 0 {
		return fmt.Errorf("%d record(s) regressed beyond %.1f%% vs %s (worst: %s %+.1f%%)",
			len(offenders), maxRegress, path, offenders[0].Name, offenders[0].Percent)
	}
	fmt.Fprintf(out, "gate: %d comparison(s) within %.1f%% of %s\n", len(deltas), maxRegress, path)
	return nil
}

// gateDeltas pairs up records by (name, workers) and emits one delta per
// comparable metric, sorted by descending regression so the worst
// offender leads error messages.
func gateDeltas(base, cur *perfReport) []gateDelta {
	type key struct {
		name    string
		workers int
	}
	old := make(map[key]perfRecord, len(base.Records))
	for _, r := range base.Records {
		old[key{r.Name, r.Workers}] = r
	}
	var deltas []gateDelta
	push := func(name string, o, n int64) {
		if o <= 0 || n < 0 {
			return
		}
		deltas = append(deltas, gateDelta{
			Name:    name,
			Old:     o,
			New:     n,
			Percent: 100 * float64(n-o) / float64(o),
		})
	}
	for _, r := range cur.Records {
		b, ok := old[key{r.Name, r.Workers}]
		if !ok {
			continue
		}
		id := fmt.Sprintf("%s w%d", r.Name, r.Workers)
		push(id+" ns/op", b.NsPerOp, r.NsPerOp)
		if b.StageNs == nil || r.StageNs == nil {
			continue
		}
		stages := []struct {
			label    string
			old, new int64
		}{
			{"decompose", b.StageNs.Decompose, r.StageNs.Decompose},
			{"dct", b.StageNs.DCT, r.StageNs.DCT},
			{"pca", b.StageNs.PCA, r.StageNs.PCA},
			{"quant", b.StageNs.Quant, r.StageNs.Quant},
			{"zlib", b.StageNs.Zlib, r.StageNs.Zlib},
			{"inflate", b.StageNs.Inflate, r.StageNs.Inflate},
			{"dequant", b.StageNs.Dequant, r.StageNs.Dequant},
			{"transform", b.StageNs.Transform, r.StageNs.Transform},
			{"recompose", b.StageNs.Recompose, r.StageNs.Recompose},
			{"total", b.StageNs.Total, r.StageNs.Total},
		}
		for _, st := range stages {
			if st.old < gateStageFloorNs {
				continue
			}
			push(id+" stage "+st.label, st.old, st.new)
		}
	}
	sort.SliceStable(deltas, func(i, j int) bool { return deltas[i].Percent > deltas[j].Percent })
	return deltas
}
