package main

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"testing"
	"time"

	"dpz"
	"dpz/client"
	"dpz/internal/core"
	"dpz/internal/dataset"
	"dpz/internal/server"
)

// The -json mode: machine-readable throughput records for the pipelined
// hot path (compress, decompress, tiled) across worker counts, written
// to BENCH_<rev>.json so runs are comparable across revisions.

// perfWorkers is the default worker sweep of the -json suite.
var perfWorkers = []int{1, 2, 4, 8}

// perfRecord is one benchmark configuration's measurement.
type perfRecord struct {
	Name        string  `json:"name"`
	Workers     int     `json:"workers"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_s"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// StageNs is the per-stage wall-time breakdown of one representative
	// (non-benchmark) run, taken from the pipeline's injectable metrics
	// clock; for batch records it is summed over the batch's tiles.
	StageNs *stageNs `json:"stage_ns,omitempty"`
	// BasisDecisions counts the reuse decisions of the representative run
	// for basis-reuse records.
	BasisDecisions map[string]int `json:"basis_decisions,omitempty"`
	// SketchDecision reports the sketch engine's path on the representative
	// run for -pca=sketch records (accept/refine/fallback).
	SketchDecision string `json:"sketch_decision,omitempty"`
}

// stageNs is a per-stage nanosecond breakdown. Compress records fill the
// Figure 9 categories (decompose..zlib); decompress records fill the
// decode stages (inflate..recompose). Total covers whichever pipeline ran.
type stageNs struct {
	Decompose int64 `json:"decompose,omitempty"`
	DCT       int64 `json:"dct,omitempty"`
	PCA       int64 `json:"pca,omitempty"`
	Quant     int64 `json:"quant,omitempty"`
	Zlib      int64 `json:"zlib,omitempty"`
	Inflate   int64 `json:"inflate,omitempty"`
	Dequant   int64 `json:"dequant,omitempty"`
	Transform int64 `json:"transform,omitempty"`
	Recompose int64 `json:"recompose,omitempty"`
	Total     int64 `json:"total"`
}

// decodeStagesOf converts a decode-side stats breakdown to stageNs.
func decodeStagesOf(st core.DecodeStats) *stageNs {
	return &stageNs{
		Inflate:   st.TimeInflate.Nanoseconds(),
		Dequant:   st.TimeDequant.Nanoseconds(),
		Transform: st.TimeTransform.Nanoseconds(),
		Recompose: st.TimeRecompose.Nanoseconds(),
		Total:     st.TimeTotal.Nanoseconds(),
	}
}

// stagesOf sums the stage timings of sts into a stageNs breakdown.
func stagesOf(sts ...dpz.Stats) *stageNs {
	var out stageNs
	for _, st := range sts {
		out.Decompose += st.TimeDecompose.Nanoseconds()
		out.DCT += st.TimeDCT.Nanoseconds()
		out.PCA += st.TimePCA.Nanoseconds()
		out.Quant += st.TimeQuant.Nanoseconds()
		out.Zlib += st.TimeZlib.Nanoseconds()
		out.Total += st.TimeTotal.Nanoseconds()
	}
	return &out
}

// perfReport is the BENCH_<rev>.json document.
type perfReport struct {
	Revision   string  `json:"revision"`
	Dirty      bool    `json:"dirty"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	NumCPU     int     `json:"num_cpu"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Scale      float64 `json:"scale"`
	// Repeat is how many times each benchmark configuration ran; every
	// record is the median (by ns/op) of that many runs. 1 = single run.
	Repeat  int          `json:"repeat"`
	Dims    []int        `json:"dims"`
	Records []perfRecord `json:"records"`
	Notes   []string     `json:"notes,omitempty"`
}

// buildRevision returns the VCS revision baked into the binary (12 hex
// chars) and whether the tree was dirty; "dev" when built without VCS
// stamping (e.g. go run).
func buildRevision() (string, bool) {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "dev", false
	}
	rev, dirty := "dev", false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			if len(s.Value) >= 12 {
				rev = s.Value[:12]
			} else if s.Value != "" {
				rev = s.Value
			}
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	return rev, dirty
}

// perfField builds the CLDHGH-scale synthetic the suite measures. Scale 1
// is the half-resolution 900x1800 grid the repo's scaling benches use.
func perfField(scale float64) *dataset.Field {
	rows := max(64, int(900*scale+0.5))
	cols := max(128, int(1800*scale+0.5))
	return dataset.CESM("CLDHGH", rows, cols, 2001)
}

// record converts a testing.BenchmarkResult to a perfRecord.
func record(name string, workers int, r testing.BenchmarkResult) perfRecord {
	mbps := 0.0
	if s := r.T.Seconds(); s > 0 {
		mbps = float64(r.Bytes) * float64(r.N) / s / 1e6
	}
	return perfRecord{
		Name:        name,
		Workers:     workers,
		Iterations:  r.N,
		NsPerOp:     r.NsPerOp(),
		MBPerSec:    mbps,
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// runPerfSuite measures the three pipeline entry points at each worker
// count and writes BENCH_<rev>.json in the current directory. When
// baseline names a previous report, the new numbers are gated against it
// (see compareBaseline) and a regression beyond maxRegress percent is an
// error. forceWorkers keeps worker counts above NumCPU in the sweep; by
// default they are skipped (on a small host they only measure scheduler
// overhead, and their records then pollute cross-revision comparisons).
func runPerfSuite(scale float64, workers []int, notes []string, baseline string, maxRegress float64, forceWorkers bool, repeat int, out io.Writer) error {
	if len(workers) == 0 {
		workers = perfWorkers
	}
	if repeat < 1 {
		repeat = 1
	}
	// bench runs one benchmark configuration repeat times and keeps the
	// median run (sorted by ns/op, element N/2). A single run on a
	// small/shared host is at the mercy of scheduler noise; the median
	// absorbs one-off stalls without averaging them into the record.
	bench := func(fn func(b *testing.B)) testing.BenchmarkResult {
		results := make([]testing.BenchmarkResult, 0, repeat)
		for i := 0; i < repeat; i++ {
			results = append(results, testing.Benchmark(fn))
		}
		sort.Slice(results, func(i, j int) bool { return results[i].NsPerOp() < results[j].NsPerOp() })
		return results[len(results)/2]
	}
	if !forceWorkers {
		kept := workers[:0]
		var skipped []int
		for _, w := range workers {
			if w > runtime.NumCPU() {
				skipped = append(skipped, w)
				continue
			}
			kept = append(kept, w)
		}
		if len(kept) == 0 {
			kept = append(kept, runtime.NumCPU())
		}
		if len(skipped) > 0 {
			notes = append(notes, fmt.Sprintf(
				"skipped worker counts %v above NumCPU=%d (-force-workers includes them)", skipped, runtime.NumCPU()))
		}
		workers = kept
	}
	f := perfField(scale)
	rawBytes := int64(4 * f.Len())
	fmt.Fprintf(out, "perf suite: %s %v (%d values), workers %v\n", f.Name, f.Dims, f.Len(), workers)

	var records []perfRecord
	add := func(name string, w int, r testing.BenchmarkResult) *perfRecord {
		rec := record(name, w, r)
		records = append(records, rec)
		fmt.Fprintf(out, "%-12s workers=%d  %12d ns/op  %8.2f MB/s  %8d allocs/op\n",
			name, w, rec.NsPerOp, rec.MBPerSec, rec.AllocsPerOp)
		return &records[len(records)-1]
	}

	for _, w := range workers {
		o := dpz.LooseOptions()
		o.Workers = w
		rec := add("compress", w, bench(func(b *testing.B) {
			b.SetBytes(rawBytes)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := dpz.CompressFloat64(f.Data, f.Dims, o); err != nil {
					b.Fatal(err)
				}
			}
		}))
		probe, err := dpz.CompressFloat64(f.Data, f.Dims, o)
		if err != nil {
			return err
		}
		rec.StageNs = stagesOf(probe.Stats)
	}

	// Sketch-engine records. compress-sketch is the same flat-spectrum
	// CLDHGH field (the sketch pilot must detect flatness and fall back at
	// small cost); compress-lowrank/compress-lowrank-sketch measure the
	// k ≪ M regime the sketch targets on a PHIS field of the same size,
	// where the guarded accept skips both the covariance build and the
	// dense eigensolve.
	lf := dataset.CESM("PHIS", f.Dims[0], f.Dims[1], 2001)
	for _, cfg := range []struct {
		name   string
		field  *dataset.Field
		sketch bool
	}{
		{"compress-sketch", f, true},
		{"compress-lowrank", lf, false},
		{"compress-lowrank-sketch", lf, true},
	} {
		for _, w := range workers {
			o := dpz.LooseOptions()
			o.Workers = w
			o.SketchPCA = cfg.sketch
			data, dims := cfg.field.Data, cfg.field.Dims
			rec := add(cfg.name, w, bench(func(b *testing.B) {
				b.SetBytes(rawBytes)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := dpz.CompressFloat64(data, dims, o); err != nil {
						b.Fatal(err)
					}
				}
			}))
			probe, err := dpz.CompressFloat64(data, dims, o)
			if err != nil {
				return err
			}
			rec.StageNs = stagesOf(probe.Stats)
			rec.SketchDecision = probe.Stats.SketchDecision
		}
	}

	res, err := dpz.CompressFloat64(f.Data, f.Dims, dpz.LooseOptions())
	if err != nil {
		return err
	}
	for _, w := range workers {
		w := w
		rec := add("decompress", w, bench(func(b *testing.B) {
			b.SetBytes(rawBytes)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Decompress(res.Data, w); err != nil {
					b.Fatal(err)
				}
			}
		}))
		_, _, dst, err := core.DecompressStats(res.Data, w, 0)
		if err != nil {
			return err
		}
		rec.StageNs = decodeStagesOf(dst)
	}

	// Progressive-preview records: decode only the leading 1/4/16/all
	// components of one stream, against the same stream's full decode
	// (preview-fulldecode, the oracle the ladder converges to). PHIS keeps
	// k high at bench scale, so the rank split is meaningful; the preview
	// win is skipping the dequantize + rank-recompose work for every
	// component above the cut.
	pw := workers[len(workers)-1]
	po := dpz.LooseOptions()
	po.Workers = pw
	pres, err := dpz.CompressFloat64(lf.Data, lf.Dims, po)
	if err != nil {
		return err
	}
	prevNs := map[string]int64{}
	prevRanks := []int{1, 4, 16}
	for _, rk := range prevRanks {
		if rk >= pres.Stats.K {
			continue // the full record below covers it
		}
		rk := rk
		name := fmt.Sprintf("preview-r%d", rk)
		rec := add(name, pw, bench(func(b *testing.B) {
			b.SetBytes(rawBytes)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := core.DecompressRanks(pres.Data, rk, pw); err != nil {
					b.Fatal(err)
				}
			}
		}))
		prevNs[name] = rec.NsPerOp
		_, _, dst, err := core.DecompressStats(pres.Data, pw, rk)
		if err != nil {
			return err
		}
		rec.StageNs = decodeStagesOf(dst)
	}
	rec := add("preview-full", pw, bench(func(b *testing.B) {
		b.SetBytes(rawBytes)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, _, err := core.DecompressRanks(pres.Data, pres.Stats.K, pw); err != nil {
				b.Fatal(err)
			}
		}
	}))
	prevNs["preview-full"] = rec.NsPerOp
	rec = add("preview-fulldecode", pw, bench(func(b *testing.B) {
		b.SetBytes(rawBytes)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := core.Decompress(pres.Data, pw); err != nil {
				b.Fatal(err)
			}
		}
	}))
	if full, r1 := rec.NsPerOp, prevNs["preview-r1"]; full > 0 && r1 > 0 {
		notes = append(notes, fmt.Sprintf(
			"rank-1 preview is %.1fx faster than the full decode (k=%d)", float64(full)/float64(r1), pres.Stats.K))
	}

	raw := make([]byte, rawBytes)
	for i, v := range f.Data {
		binary.LittleEndian.PutUint32(raw[4*i:], math.Float32bits(float32(v)))
	}
	tileRows := max(1, f.Dims[0]/8)
	for _, w := range workers {
		o := dpz.LooseOptions()
		o.Workers = w
		add("tiled", w, bench(func(b *testing.B) {
			b.SetBytes(rawBytes)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := dpz.CompressTiled(bytes.NewReader(raw), f.Dims, tileRows, o, io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}

	// Repeated-tile batch workload: the basis-reuse target case. The
	// batch holds similar smooth tiles (one synthetic slab with a tiny
	// per-tile drift), compressed with the cross-tile basis cache off and
	// on at the same options; the speedup comes from accepted/warm-started
	// fits skipping the per-tile covariance build and eigensolve. PHIS is
	// the low-rank spec (k ≪ M, PCA-dominated) — the regime DPZ targets
	// and the one where skipping the eigensolve pays; tall tiles keep the
	// per-tile block count high enough that the PCA stage dominates.
	const batchTiles = 16
	btr := max(8, f.Dims[0]/2)
	base := dataset.CESM("PHIS", btr, f.Dims[len(f.Dims)-1], 2001)
	bfields := make([]dpz.ArchiveField, batchTiles)
	for t := range bfields {
		data := make([]float64, len(base.Data))
		drift := 1 + 1e-5*float64(t)
		for i, v := range base.Data {
			data[i] = v * drift
		}
		bfields[t] = dpz.ArchiveField{Name: fmt.Sprintf("tile-%02d", t), Data: data, Dims: base.Dims}
	}
	batchBytes := int64(4 * len(base.Data) * batchTiles)
	for _, reuse := range []bool{false, true} {
		name := "batch"
		if reuse {
			name = "batch-reuse"
		}
		for _, w := range workers {
			o := dpz.LooseOptions()
			o.Workers = w
			o.BasisReuse = reuse
			rec := add(name, w, bench(func(b *testing.B) {
				b.SetBytes(batchBytes)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					aw, err := dpz.NewArchiveWriter(io.Discard)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := aw.CompressBatch(bfields, o); err != nil {
						b.Fatal(err)
					}
					if err := aw.Close(); err != nil {
						b.Fatal(err)
					}
				}
			}))
			aw, err := dpz.NewArchiveWriter(io.Discard)
			if err != nil {
				return err
			}
			bstats, err := aw.CompressBatch(bfields, o)
			if err != nil {
				return err
			}
			if err := aw.Close(); err != nil {
				return err
			}
			rec.StageNs = stagesOf(bstats...)
			if reuse {
				decisions := map[string]int{}
				for _, st := range bstats {
					if st.BasisDecision != "" {
						decisions[st.BasisDecision]++
					}
				}
				rec.BasisDecisions = decisions
			}
		}
	}

	// Client-overhead probe: the same small compress request driven
	// through a raw net/http POST and through dpz/client with its full
	// resilience stack armed (retry budget + hedging), against an
	// in-process daemon at zero fault rate. The delta between the two
	// records is the happy-path price of the retry/hedge machinery —
	// what the chaos suite pays back under faults. The field is small so
	// the HTTP + client path, not compression, dominates the cost.
	clf := dataset.CESM("CLDHGH", 64, 128, 2001)
	clRaw := make([]byte, 4*clf.Len())
	for i, v := range clf.Data {
		binary.LittleEndian.PutUint32(clRaw[4*i:], math.Float32bits(float32(v)))
	}
	srv := server.New(server.Config{Jobs: 2, QueueDepth: 8})
	ts := httptest.NewServer(srv.Handler())
	clURL := ts.URL + "/v1/compress?dims=64x128&scheme=loose&tve=4"
	add("server-raw", 1, bench(func(b *testing.B) {
		b.SetBytes(int64(len(clRaw)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			resp, err := http.Post(clURL, "application/octet-stream", bytes.NewReader(clRaw))
			if err != nil {
				b.Fatal(err)
			}
			_, cerr := io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if cerr != nil || resp.StatusCode != http.StatusOK {
				b.Fatalf("read body: %v, code %d", cerr, resp.StatusCode)
			}
		}
	}))
	cl := &client.Client{BaseURL: ts.URL, HedgeDelay: 250 * time.Millisecond}
	clOpts := client.CompressOptions{Scheme: "loose", TVENines: 4}
	add("server-client", 1, bench(func(b *testing.B) {
		b.SetBytes(int64(len(clRaw)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cl.Compress(context.Background(), clRaw, clf.Dims, clOpts); err != nil {
				b.Fatal(err)
			}
		}
	}))
	// Read-path cache probe: the identical preview request served cold
	// (response cache disabled, every request decodes) and from the warmed
	// cache (key lookup + body copy, no scheduler admission, no decode).
	// The ratio between the two records is the steady-state win for
	// repeated identical previews. Unlike the client-overhead probe this
	// field and rank count are big enough that the decode, not the HTTP
	// round trip, dominates the cold path.
	cpf := dataset.CESM("CLDHGH", 256, 512, 2001)
	cpRes, err := dpz.CompressFloat64(cpf.Data, cpf.Dims, dpz.LooseOptions())
	if err != nil {
		return err
	}
	clStream := cpRes.Data
	cpBytes := int64(4 * cpf.Len())
	cpInfo, err := dpz.Stat(clStream)
	if err != nil {
		return err
	}
	cpRanks := min(cpInfo.Components, 32)
	cpURL := fmt.Sprintf("/v1/preview?ranks=%d", cpRanks)
	postPreview := func(b *testing.B, base, wantCache string) {
		resp, err := http.Post(base+cpURL, "application/octet-stream", bytes.NewReader(clStream))
		if err != nil {
			b.Fatal(err)
		}
		_, cerr := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if cerr != nil || resp.StatusCode != http.StatusOK {
			b.Fatalf("preview: read body: %v, code %d", cerr, resp.StatusCode)
		}
		if got := resp.Header.Get("X-Dpz-Cache"); got != wantCache {
			b.Fatalf("preview: X-Dpz-Cache = %q, want %q", got, wantCache)
		}
	}
	coldSrv := server.New(server.Config{Jobs: 2, QueueDepth: 8, CacheEntries: -1})
	coldTS := httptest.NewServer(coldSrv.Handler())
	coldRec := add("server-preview-cold", 1, bench(func(b *testing.B) {
		b.SetBytes(cpBytes)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			postPreview(b, coldTS.URL, "bypass")
		}
	}))
	coldTS.Close()
	coldDrainCtx, coldCancel := context.WithTimeout(context.Background(), 30*time.Second)
	coldDrainErr := coldSrv.Drain(coldDrainCtx)
	coldCancel()
	if coldDrainErr != nil {
		return coldDrainErr
	}
	// Warm the caching server (the first request is the one real decode),
	// then bench pure hits against it.
	warmResp, err := http.Post(ts.URL+cpURL, "application/octet-stream", bytes.NewReader(clStream))
	if err != nil {
		return err
	}
	if _, err := io.Copy(io.Discard, warmResp.Body); err != nil {
		return err
	}
	warmResp.Body.Close()
	if warmResp.StatusCode != http.StatusOK {
		return fmt.Errorf("cache warm preview: code %d", warmResp.StatusCode)
	}
	cachedRec := add("server-preview-cached", 1, bench(func(b *testing.B) {
		b.SetBytes(cpBytes)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			postPreview(b, ts.URL, "hit")
		}
	}))
	if coldRec.NsPerOp > 0 && cachedRec.NsPerOp > 0 {
		notes = append(notes, fmt.Sprintf(
			"preview cache: cold %d ns/op vs cached %d ns/op (%.1fx)",
			coldRec.NsPerOp, cachedRec.NsPerOp,
			float64(coldRec.NsPerOp)/float64(cachedRec.NsPerOp)))
	}
	ts.Close()
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	drainErr := srv.Drain(drainCtx)
	cancel()
	if drainErr != nil {
		return drainErr
	}
	if st := cl.Stats(); st.Retries > 0 || st.Hedges > 0 {
		notes = append(notes, fmt.Sprintf(
			"client overhead probe saw %d retries / %d hedges at zero fault rate", st.Retries, st.Hedges))
	}

	rev, dirty := buildRevision()
	if runtime.NumCPU() == 1 {
		notes = append(notes, "single-CPU host: worker counts > 1 cannot improve wall clock here")
	}
	report := perfReport{
		Revision:   rev,
		Dirty:      dirty,
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      scale,
		Repeat:     repeat,
		Dims:       f.Dims,
		Records:    records,
		Notes:      notes,
	}
	doc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	name := fmt.Sprintf("BENCH_%s.json", rev)
	if err := os.WriteFile(name, append(doc, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", name)
	if baseline != "" {
		return compareBaseline(baseline, report, maxRegress, out)
	}
	return nil
}
