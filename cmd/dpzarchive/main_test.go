package main

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"dpz"
	"dpz/internal/dataset"
)

func TestParseFieldSpec(t *testing.T) {
	spec, err := parseFieldSpec("fldsc:180x360:data/f.f32")
	if err != nil {
		t.Fatal(err)
	}
	if spec.name != "fldsc" || spec.path != "data/f.f32" || len(spec.dims) != 2 || spec.dims[1] != 360 {
		t.Fatalf("spec = %+v", spec)
	}
	for _, bad := range []string{"", "a:b", "a::f", ":10:f", "a:10:", "a:0x5:f", "a:axb:f"} {
		if _, err := parseFieldSpec(bad); err == nil {
			t.Fatalf("expected error for %q", bad)
		}
	}
}

func TestPackListExtractEndToEnd(t *testing.T) {
	dir := t.TempDir()
	// Generate two raw fields.
	f1 := dataset.CESM("FLDSC", 48, 96, 95)
	f2 := dataset.CESM("PHIS", 48, 96, 96)
	p1 := filepath.Join(dir, "fldsc.f32")
	p2 := filepath.Join(dir, "phis.f32")
	if err := dataset.WriteRawFloat32(f1, p1); err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteRawFloat32(f2, p2); err != nil {
		t.Fatal(err)
	}
	arc := filepath.Join(dir, "c.dpza")

	if err := run([]string{"pack", "-scheme", "strict", "-tve", "4", arc,
		"fldsc:48x96:" + p1, "phis:48x96:" + p2}); err != nil {
		t.Fatalf("pack: %v", err)
	}
	if err := run([]string{"list", arc}); err != nil {
		t.Fatalf("list: %v", err)
	}
	out := filepath.Join(dir, "recon.f32")
	if err := run([]string{"extract", arc, "phis", out}); err != nil {
		t.Fatalf("extract: %v", err)
	}
	got, err := dataset.ReadRawFloat32(out, []int{48, 96})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Data) != f2.Len() {
		t.Fatalf("extracted %d values", len(got.Data))
	}
	// Error paths.
	if err := run([]string{"extract", arc, "missing", out}); err == nil {
		t.Fatal("expected error for missing field")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Fatal("expected error for unknown subcommand")
	}
	if err := run(nil); err == nil {
		t.Fatal("expected usage error")
	}
	if err := run([]string{"pack", arc}); err == nil {
		t.Fatal("expected pack usage error")
	}
	if err := run([]string{"pack", "-scheme", "weird", arc, "a:4x4:" + p1}); err == nil {
		t.Fatal("expected scheme error")
	}
	_ = os.Remove(out)
}

func TestVerifyAndRepairEndToEnd(t *testing.T) {
	dir := t.TempDir()
	arc := filepath.Join(dir, "c.dpza")
	out, err := os.Create(arc)
	if err != nil {
		t.Fatal(err)
	}
	aw, err := dpz.NewArchiveWriter(out)
	if err != nil {
		t.Fatal(err)
	}
	fields := map[string][]byte{
		"fldsc": bytes.Repeat([]byte("abc"), 300),
		"phis":  bytes.Repeat([]byte{0x11, 0x22}, 400),
		"t850":  []byte("tiny"),
	}
	for _, name := range []string{"fldsc", "phis", "t850"} {
		if err := aw.Append(name, fields[name]); err != nil {
			t.Fatal(err)
		}
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := out.Close(); err != nil {
		t.Fatal(err)
	}

	// Clean archive verifies cleanly.
	if err := run([]string{"verify", arc}); err != nil {
		t.Fatalf("verify clean: %v", err)
	}

	// Corrupt one byte of one field's payload: verify must fail and name
	// exactly that field; repair must salvage the other two.
	raw, err := os.ReadFile(arc)
	if err != nil {
		t.Fatal(err)
	}
	target := "phis"
	// Locate the payload by searching for its unique bytes; flip mid-way.
	off := bytes.Index(raw, fields[target])
	if off < 0 {
		t.Fatal("payload not found in archive bytes")
	}
	raw[off+len(fields[target])/2] ^= 0x40
	bad := filepath.Join(dir, "bad.dpza")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"verify", bad}); err == nil {
		t.Fatal("verify accepted a corrupt archive")
	}

	fixed := filepath.Join(dir, "fixed.dpza")
	if err := run([]string{"repair", bad, fixed}); err != nil {
		t.Fatalf("repair: %v", err)
	}
	fr, ff, err := openArchive(fixed)
	if err != nil {
		t.Fatalf("repaired archive does not open: %v", err)
	}
	defer ff.Close()
	names := fr.Fields()
	if len(names) != 2 {
		t.Fatalf("repaired fields = %v, want the two intact ones", names)
	}
	for _, name := range []string{"fldsc", "t850"} {
		got, err := fr.Stream(name)
		if err != nil || !bytes.Equal(got, fields[name]) {
			t.Fatalf("field %q wrong after repair: %v", name, err)
		}
	}
	if err := run([]string{"verify", fixed}); err != nil {
		t.Fatalf("repaired archive fails verify: %v", err)
	}

	// Usage errors.
	if err := run([]string{"verify"}); err == nil {
		t.Fatal("expected verify usage error")
	}
	if err := run([]string{"repair", bad}); err == nil {
		t.Fatal("expected repair usage error")
	}
}

func TestQuerySubcommand(t *testing.T) {
	dir := t.TempDir()

	// Tiled archive: four 16-row tiles of a 64x32 field.
	f := dataset.CESM("FLDSC", 64, 32, 42)
	raw := make([]byte, 4*f.Len())
	for i, v := range f.Data {
		float32ToBytes(raw[4*i:], float32(v))
	}
	opts := dpz.StrictOptions()
	opts.TVE = dpz.Nines(4)
	var buf bytes.Buffer
	if _, err := dpz.CompressTiled(bytes.NewReader(raw), f.Dims, 16, opts, &buf); err != nil {
		t.Fatal(err)
	}
	tiled := filepath.Join(dir, "tiled.dpza")
	if err := os.WriteFile(tiled, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	// Aggregate-only, predicate, similarity, and JSON paths on the tiled
	// archive. stdout content is covered by the JSON capture below; here
	// the commands just have to succeed against the embedded index.
	if err := run([]string{"query", tiled}); err != nil {
		t.Fatalf("query aggregate: %v", err)
	}
	if err := run([]string{"query", "-pred", "min<1e300", tiled}); err != nil {
		t.Fatalf("query -pred: %v", err)
	}
	if err := run([]string{"query", "-similar-to", "0", "-k", "2", tiled}); err != nil {
		t.Fatalf("query -similar-to: %v", err)
	}

	// Capture -json output and check it against the library's own answer.
	jsonOut := captureStdout(t, func() {
		if err := run([]string{"query", "-json", "-pred", "min<1e300", tiled}); err != nil {
			t.Errorf("query -json: %v", err)
		}
	})
	var report struct {
		Tiles     int                `json:"tiles"`
		Aggregate dpz.IndexAggregate `json:"aggregate"`
		Query     string             `json:"query"`
		Matches   []dpz.Match        `json:"matches"`
	}
	if err := json.Unmarshal(jsonOut, &report); err != nil {
		t.Fatalf("query -json output not JSON: %v\n%s", err, jsonOut)
	}
	tr, tf, err := func() (*dpz.TiledReader, *os.File, error) {
		in, err := os.Open(tiled)
		if err != nil {
			return nil, nil, err
		}
		st, err := in.Stat()
		if err != nil {
			in.Close()
			return nil, nil, err
		}
		r, err := dpz.OpenTiled(in, st.Size())
		return r, in, err
	}()
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	ix, err := tr.Index()
	if err != nil {
		t.Fatal(err)
	}
	if report.Tiles != len(ix.Tiles) || report.Tiles != 4 {
		t.Fatalf("report tiles = %d, index tiles = %d, want 4", report.Tiles, len(ix.Tiles))
	}
	if report.Aggregate != ix.Aggregate() {
		t.Fatalf("report aggregate %+v != index aggregate %+v", report.Aggregate, ix.Aggregate())
	}
	if len(report.Matches) != 4 {
		t.Fatalf("min<1e300 matched %d of 4 tiles", len(report.Matches))
	}

	// Plain (non-tiled) archives answer from per-field stream indexes.
	g := dataset.CESM("PHIS", 48, 96, 7)
	gp := filepath.Join(dir, "phis.f32")
	if err := dataset.WriteRawFloat32(g, gp); err != nil {
		t.Fatal(err)
	}
	plain := filepath.Join(dir, "plain.dpza")
	if err := run([]string{"pack", "-tve", "4", plain, "phis:48x96:" + gp}); err != nil {
		t.Fatalf("pack: %v", err)
	}
	if err := run([]string{"query", plain}); err != nil {
		t.Fatalf("query plain archive: %v", err)
	}

	// Error paths: no archive arg, pred+similar-to exclusion, bad
	// predicate, and an archive whose streams carry no index.
	if err := run([]string{"query"}); err == nil {
		t.Fatal("expected query usage error")
	}
	if err := run([]string{"query", "-pred", "max>1", "-similar-to", "0", tiled}); err == nil {
		t.Fatal("expected pred/similar-to exclusion error")
	}
	if err := run([]string{"query", "-pred", "max!!1", tiled}); err == nil {
		t.Fatal("expected bad predicate error")
	}
	noIx := filepath.Join(dir, "noindex.dpza")
	out, err := os.Create(noIx)
	if err != nil {
		t.Fatal(err)
	}
	aw, err := dpz.NewArchiveWriter(out)
	if err != nil {
		t.Fatal(err)
	}
	v2opts := opts
	v2opts.NoIndex = true
	res, err := dpz.CompressFloat64(g.Data, g.Dims, v2opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := aw.Append("phis", res.Data); err != nil {
		t.Fatal(err)
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := out.Close(); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"query", noIx}); !errors.Is(err, dpz.ErrNoIndex) {
		t.Fatalf("query on index-less archive = %v, want ErrNoIndex", err)
	}
}

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it wrote (runQuery prints to stdout directly, like runList).
func captureStdout(t *testing.T, fn func()) []byte {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan []byte)
	go func() {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(r)
		done <- buf.Bytes()
	}()
	fn()
	os.Stdout = old
	_ = w.Close()
	out := <-done
	_ = r.Close()
	return out
}

// float32ToBytes writes v little-endian into b.
func float32ToBytes(b []byte, v float32) {
	binary.LittleEndian.PutUint32(b, math.Float32bits(v))
}

func TestDurablePackAndRecover(t *testing.T) {
	dir := t.TempDir()
	f1 := dataset.CESM("FLDSC", 32, 64, 7)
	p1 := filepath.Join(dir, "fldsc.f32")
	if err := dataset.WriteRawFloat32(f1, p1); err != nil {
		t.Fatal(err)
	}
	arc := filepath.Join(dir, "d.dpza")
	if err := run([]string{"pack", "-durable", "-tve", "4", arc, "fldsc:32x64:" + p1}); err != nil {
		t.Fatalf("pack -durable: %v", err)
	}
	// A durably packed archive is a normal archive: list, verify, extract
	// all work through the indexed path.
	if err := run([]string{"verify", arc}); err != nil {
		t.Fatalf("verify durable archive: %v", err)
	}
	out := filepath.Join(dir, "recon.f32")
	if err := run([]string{"extract", arc, "fldsc", out}); err != nil {
		t.Fatalf("extract: %v", err)
	}
	// pack -durable refuses to overwrite (CreateExcl semantics).
	if err := run([]string{"pack", "-durable", arc, "fldsc:32x64:" + p1}); err == nil {
		t.Fatal("expected error packing over an existing durable archive")
	}

	// Tear the archive mid-tail (simulating a crash before Close): recover
	// restores the committed field and can repack it.
	raw, err := os.ReadFile(arc)
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, "torn.dpza")
	if err := os.WriteFile(torn, raw[:len(raw)-25], 0o644); err != nil {
		t.Fatal(err)
	}
	repacked := filepath.Join(dir, "repacked.dpza")
	if err := run([]string{"recover", torn, repacked}); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if err := run([]string{"verify", repacked}); err != nil {
		t.Fatalf("verify repacked: %v", err)
	}
	if err := run([]string{"recover"}); err == nil {
		t.Fatal("expected recover usage error")
	}
}
