package main

import (
	"os"
	"path/filepath"
	"testing"

	"dpz/internal/dataset"
)

func TestParseFieldSpec(t *testing.T) {
	spec, err := parseFieldSpec("fldsc:180x360:data/f.f32")
	if err != nil {
		t.Fatal(err)
	}
	if spec.name != "fldsc" || spec.path != "data/f.f32" || len(spec.dims) != 2 || spec.dims[1] != 360 {
		t.Fatalf("spec = %+v", spec)
	}
	for _, bad := range []string{"", "a:b", "a::f", ":10:f", "a:10:", "a:0x5:f", "a:axb:f"} {
		if _, err := parseFieldSpec(bad); err == nil {
			t.Fatalf("expected error for %q", bad)
		}
	}
}

func TestPackListExtractEndToEnd(t *testing.T) {
	dir := t.TempDir()
	// Generate two raw fields.
	f1 := dataset.CESM("FLDSC", 48, 96, 95)
	f2 := dataset.CESM("PHIS", 48, 96, 96)
	p1 := filepath.Join(dir, "fldsc.f32")
	p2 := filepath.Join(dir, "phis.f32")
	if err := dataset.WriteRawFloat32(f1, p1); err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteRawFloat32(f2, p2); err != nil {
		t.Fatal(err)
	}
	arc := filepath.Join(dir, "c.dpza")

	if err := run([]string{"pack", "-scheme", "strict", "-tve", "4", arc,
		"fldsc:48x96:" + p1, "phis:48x96:" + p2}); err != nil {
		t.Fatalf("pack: %v", err)
	}
	if err := run([]string{"list", arc}); err != nil {
		t.Fatalf("list: %v", err)
	}
	out := filepath.Join(dir, "recon.f32")
	if err := run([]string{"extract", arc, "phis", out}); err != nil {
		t.Fatalf("extract: %v", err)
	}
	got, err := dataset.ReadRawFloat32(out, []int{48, 96})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Data) != f2.Len() {
		t.Fatalf("extracted %d values", len(got.Data))
	}
	// Error paths.
	if err := run([]string{"extract", arc, "missing", out}); err == nil {
		t.Fatal("expected error for missing field")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Fatal("expected error for unknown subcommand")
	}
	if err := run(nil); err == nil {
		t.Fatal("expected usage error")
	}
	if err := run([]string{"pack", arc}); err == nil {
		t.Fatal("expected pack usage error")
	}
	if err := run([]string{"pack", "-scheme", "weird", arc, "a:4x4:" + p1}); err == nil {
		t.Fatal("expected scheme error")
	}
	_ = os.Remove(out)
}
