// Command dpzarchive packs raw float32 fields into a DPZ archive, lists
// an archive's contents, extracts fields back to raw float32 files,
// checks archive integrity, and repairs damaged archives.
//
// Usage:
//
//	dpzarchive pack -scheme strict -tve 5 out.dpza fldsc:180x360:fldsc.f32 phis:180x360:phis.f32
//	dpzarchive pack -durable out.dpza fldsc:180x360:fldsc.f32
//	dpzarchive list campaign.dpza
//	dpzarchive extract campaign.dpza fldsc recon.f32
//	dpzarchive query -pred "max>273.15" tiled.dpza
//	dpzarchive query -similar-to 2 -k 3 tiled.dpza
//	dpzarchive verify campaign.dpza
//	dpzarchive repair damaged.dpza repaired.dpza
//	dpzarchive recover torn.dpza [repacked.dpza]
//
// query answers range, similarity and aggregate questions from the
// retrieval index (tile summaries embedded at compression time) without
// decompressing any payload — on tiled archives and on plain archives
// whose streams carry index sections.
//
// pack -durable journals every field with a fsynced commit record, so a
// crash mid-pack loses at most the field being written; recover restores
// the committed fields from such a torn archive (and, given an output
// path, repacks them into a clean indexed archive). repair differs from
// recover: it scavenges whatever frames survive in ANY damaged archive,
// while recover bounds the scan to the durable journal's last commit.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dpz"
	"dpz/internal/dataset"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "dpzarchive: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: dpzarchive pack|list|extract|verify|repair ...")
	}
	switch args[0] {
	case "pack":
		return runPack(args[1:])
	case "list":
		return runList(args[1:])
	case "extract":
		return runExtract(args[1:])
	case "query":
		return runQuery(args[1:])
	case "verify":
		return runVerify(args[1:])
	case "repair":
		return runRepair(args[1:])
	case "recover":
		return runRecover(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (pack|list|extract|query|verify|repair|recover)", args[0])
	}
}

// fieldSpec is one name:dims:path argument of pack.
type fieldSpec struct {
	name string
	dims []int
	path string
}

// parseFieldSpec parses "name:AxB:file.f32".
func parseFieldSpec(s string) (fieldSpec, error) {
	parts := strings.SplitN(s, ":", 3)
	if len(parts) != 3 || parts[0] == "" || parts[2] == "" {
		return fieldSpec{}, fmt.Errorf("field spec %q must be name:dims:file", s)
	}
	dims, err := parseDims(parts[1])
	if err != nil {
		return fieldSpec{}, err
	}
	return fieldSpec{name: parts[0], dims: dims, path: parts[2]}, nil
}

func parseDims(s string) ([]int, error) {
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) < 1 || len(parts) > 4 {
		return nil, fmt.Errorf("dims %q must have 1-4 components", s)
	}
	dims := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad dimension %q in %q", p, s)
		}
		dims[i] = v
	}
	return dims, nil
}

// packSink abstracts the two archive writers pack can target: the plain
// streaming writer and the crash-safe journaled one.
type packSink interface {
	CompressFloat64(name string, data []float64, dims []int, o dpz.Options) (*dpz.Stats, error)
	Close() error
}

func runPack(args []string) error {
	fs := flag.NewFlagSet("pack", flag.ContinueOnError)
	scheme := fs.String("scheme", "strict", "quantization scheme: loose or strict")
	nines := fs.Int("tve", 5, "TVE threshold as a count of nines (3..8)")
	sampling := fs.Bool("sampling", false, "enable the sampling strategy")
	durable := fs.Bool("durable", false, "journal each field with a fsynced commit record (crash-safe; see `dpzarchive recover`)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) < 2 {
		return fmt.Errorf("usage: dpzarchive pack [flags] out.dpza name:dims:file ...")
	}
	var opts dpz.Options
	switch strings.ToLower(*scheme) {
	case "loose":
		opts = dpz.LooseOptions()
	case "strict":
		opts = dpz.StrictOptions()
	default:
		return fmt.Errorf("unknown scheme %q", *scheme)
	}
	if *nines < 1 || *nines > 12 {
		return fmt.Errorf("tve nines %d out of range", *nines)
	}
	opts.TVE = dpz.Nines(*nines)
	opts.UseSampling = *sampling

	var aw packSink
	var out *os.File
	if *durable {
		dw, err := dpz.CreateDurableArchive(rest[0])
		if err != nil {
			return err
		}
		aw = dw
	} else {
		var err error
		if out, err = os.Create(rest[0]); err != nil {
			return err
		}
		defer out.Close()
		if aw, err = dpz.NewArchiveWriter(out); err != nil {
			return err
		}
	}
	for _, arg := range rest[1:] {
		spec, err := parseFieldSpec(arg)
		if err != nil {
			return err
		}
		field, err := dataset.ReadRawFloat32(spec.path, spec.dims)
		if err != nil {
			return err
		}
		st, err := aw.CompressFloat64(spec.name, field.Data, spec.dims, opts)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %v  %d -> %d bytes (CR %.2fx)\n",
			spec.name, spec.dims, st.OrigBytes, st.CompressedBytes, st.CRTotal)
	}
	if err := aw.Close(); err != nil {
		return err
	}
	if out != nil {
		return out.Close()
	}
	return nil
}

func openArchive(path string) (*dpz.ArchiveReader, *os.File, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	info, err := in.Stat()
	if err != nil {
		in.Close()
		return nil, nil, err
	}
	ar, err := dpz.OpenArchive(in, info.Size())
	if err != nil {
		in.Close()
		return nil, nil, err
	}
	return ar, in, nil
}

// stringList is a repeatable string flag (-pred may appear many times).
type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

// archiveIndex loads the retrieval index of a tiled archive (the
// consolidated entry, or per-tile assembly) or of a plain archive (one
// summary per field stream, in listing order). The returned names label
// each tile for output; they are entry names for plain archives and
// tile-NNNNNN for tiled ones.
func archiveIndex(path string) (*dpz.Index, []string, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer in.Close()
	info, err := in.Stat()
	if err != nil {
		return nil, nil, err
	}
	if tr, err := dpz.OpenTiled(in, info.Size()); err == nil {
		ix, err := tr.Index()
		if err != nil {
			return nil, nil, err
		}
		names := make([]string, len(ix.Tiles))
		for i := range names {
			names[i] = fmt.Sprintf("tile-%06d", i)
		}
		return ix, names, nil
	}
	ar, err := dpz.OpenArchive(in, info.Size())
	if err != nil {
		return nil, nil, err
	}
	var ix dpz.Index
	var names []string
	for _, name := range ar.Fields() {
		raw, err := ar.Stream(name)
		if err != nil {
			return nil, nil, err
		}
		six, err := dpz.ReadIndex(raw)
		if err != nil {
			return nil, nil, fmt.Errorf("field %q: %w", name, err)
		}
		for range six.Tiles {
			names = append(names, name)
		}
		ix.Tiles = append(ix.Tiles, six.Tiles...)
	}
	return &ix, names, nil
}

func runQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ContinueOnError)
	var predStrs stringList
	fs.Var(&predStrs, "pred", "range predicate over tile summaries, e.g. 'max>273.15' (repeatable, ANDed)")
	similarTo := fs.Int("similar-to", -1, "rank tiles by similarity to this tile number")
	k := fs.Int("k", 5, "how many similar tiles to return with -similar-to")
	asJSON := fs.Bool("json", false, "emit the result as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: dpzarchive query [-pred EXPR]... [-similar-to N -k K] [-json] archive.dpza")
	}
	if len(predStrs) > 0 && *similarTo >= 0 {
		return fmt.Errorf("-pred and -similar-to are mutually exclusive")
	}
	ix, names, err := archiveIndex(fs.Arg(0))
	if err != nil {
		return err
	}

	report := struct {
		Tiles     int                `json:"tiles"`
		Aggregate dpz.IndexAggregate `json:"aggregate"`
		Query     string             `json:"query,omitempty"`
		Matches   []dpz.Match        `json:"matches,omitempty"`
	}{Tiles: len(ix.Tiles), Aggregate: ix.Aggregate()}

	switch {
	case len(predStrs) > 0:
		preds := make([]dpz.Predicate, len(predStrs))
		for i, ps := range predStrs {
			if preds[i], err = dpz.ParsePredicate(ps); err != nil {
				return err
			}
		}
		if report.Matches, err = ix.Range(preds...); err != nil {
			return err
		}
		report.Query = strings.Join(predStrs, " && ")
	case *similarTo >= 0:
		if report.Matches, err = ix.SimilarTo(*similarTo, *k); err != nil {
			return err
		}
		report.Query = fmt.Sprintf("similar-to=%d k=%d", *similarTo, *k)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	agg := report.Aggregate
	fmt.Printf("tiles: %d, values: %d\n", report.Tiles, agg.Count)
	fmt.Printf("min %g  max %g  mean %g  rms %g\n", agg.Min, agg.Max, agg.Mean, agg.RMS)
	if report.Query != "" {
		fmt.Printf("query: %s (%d matches)\n", report.Query, len(report.Matches))
		for _, m := range report.Matches {
			label := strconv.Itoa(m.Tile)
			if m.Tile < len(names) {
				label = names[m.Tile]
			}
			fmt.Printf("  tile %-4d %-20s score %g\n", m.Tile, label, m.Score)
		}
	}
	return nil
}

func runList(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: dpzarchive list archive.dpza")
	}
	ar, in, err := openArchive(args[0])
	if err != nil {
		return err
	}
	defer in.Close()
	for _, name := range ar.Fields() {
		raw, err := ar.Stream(name)
		if err != nil {
			return err
		}
		fmt.Printf("%-20s %d bytes\n", name, len(raw))
	}
	fmt.Printf("%d fields\n", ar.Len())
	return nil
}

// openArchiveRecover opens an archive with the frame-scan fallback
// enabled, so damaged indexes still yield whatever fields survive.
func openArchiveRecover(path string) (*dpz.ArchiveReader, *os.File, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	info, err := in.Stat()
	if err != nil {
		in.Close()
		return nil, nil, err
	}
	ar, err := dpz.OpenArchiveOptions(in, info.Size(), dpz.ArchiveOptions{AllowRecovery: true})
	if err != nil {
		in.Close()
		return nil, nil, err
	}
	return ar, in, nil
}

func runVerify(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: dpzarchive verify archive.dpza")
	}
	ar, in, err := openArchiveRecover(args[0])
	if err != nil {
		return err
	}
	defer in.Close()
	if ar.Recovered() {
		fmt.Printf("index damaged: fields listed via frame-scan recovery\n")
	}
	corrupt := 0
	for _, st := range ar.Verify() {
		if st.OK {
			fmt.Printf("%-20s %10d bytes  OK\n", st.Name, st.Length)
		} else {
			corrupt++
			fmt.Printf("%-20s %10d bytes  CORRUPT (%v)\n", st.Name, st.Length, st.Err)
		}
	}
	if corrupt > 0 || ar.Recovered() {
		return fmt.Errorf("%d of %d fields corrupt (archive v%d)", corrupt, ar.Len(), ar.Version())
	}
	fmt.Printf("%d fields OK (archive v%d)\n", ar.Len(), ar.Version())
	return nil
}

func runRepair(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: dpzarchive repair damaged.dpza repaired.dpza")
	}
	ar, in, err := openArchiveRecover(args[0])
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(args[1])
	if err != nil {
		return err
	}
	defer out.Close()
	aw, err := dpz.NewArchiveWriter(out)
	if err != nil {
		return err
	}
	salvaged, lost := 0, 0
	for _, name := range ar.Fields() {
		payload, err := ar.Stream(name)
		if err != nil {
			lost++
			fmt.Printf("%-20s LOST (%v)\n", name, err)
			continue
		}
		if err := aw.Append(name, payload); err != nil {
			return err
		}
		salvaged++
		fmt.Printf("%-20s %10d bytes  salvaged\n", name, len(payload))
	}
	if err := aw.Close(); err != nil {
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Printf("salvaged %d fields, lost %d -> %s\n", salvaged, lost, args[1])
	if salvaged == 0 {
		return fmt.Errorf("no fields salvaged from %s", args[0])
	}
	return nil
}

func runRecover(args []string) error {
	if len(args) != 1 && len(args) != 2 {
		return fmt.Errorf("usage: dpzarchive recover torn.dpza [repacked.dpza]")
	}
	ar, f, err := dpz.RecoverArchiveFile(args[0])
	if err != nil {
		return err
	}
	defer f.Close()
	for _, name := range ar.Fields() {
		raw, err := ar.Stream(name)
		if err != nil {
			return err
		}
		fmt.Printf("%-20s %10d bytes  committed\n", name, len(raw))
	}
	fmt.Printf("%d fields recovered\n", ar.Len())
	if ar.Len() == 0 {
		return fmt.Errorf("no committed fields in %s", args[0])
	}
	if len(args) == 1 {
		return nil
	}
	out, err := os.Create(args[1])
	if err != nil {
		return err
	}
	defer out.Close()
	aw, err := dpz.NewArchiveWriter(out)
	if err != nil {
		return err
	}
	for _, name := range ar.Fields() {
		raw, err := ar.Stream(name)
		if err != nil {
			return err
		}
		if err := aw.Append(name, raw); err != nil {
			return err
		}
	}
	if err := aw.Close(); err != nil {
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Printf("repacked %d fields -> %s\n", ar.Len(), args[1])
	return nil
}

func runExtract(args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("usage: dpzarchive extract archive.dpza field out.f32")
	}
	ar, in, err := openArchive(args[0])
	if err != nil {
		return err
	}
	defer in.Close()
	data, dims, err := ar.DecompressFloat64(args[1])
	if err != nil {
		return err
	}
	field := &dataset.Field{Name: args[1], Dims: dims, Data: data}
	if err := dataset.WriteRawFloat32(field, args[2]); err != nil {
		return err
	}
	fmt.Printf("extracted %s %v -> %s\n", args[1], dims, args[2])
	return nil
}
