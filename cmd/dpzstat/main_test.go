package main

import (
	"os"
	"path/filepath"
	"testing"

	"dpz"
	"dpz/internal/dataset"
)

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	f := dataset.CESM("FLDSC", 48, 96, 121)
	orig := filepath.Join(dir, "f.f32")
	if err := dataset.WriteRawFloat32(f, orig); err != nil {
		t.Fatal(err)
	}
	res, err := dpz.CompressFloat64(f.Data, f.Dims, dpz.StrictOptions())
	if err != nil {
		t.Fatal(err)
	}
	comp := filepath.Join(dir, "f.dpz")
	if err := os.WriteFile(comp, res.Data, 0o644); err != nil {
		t.Fatal(err)
	}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()

	if err := run([]string{"-dims", "48x96", orig, comp}, devnull); err != nil {
		t.Fatalf("full-rank stat: %v", err)
	}
	if err := run([]string{"-dims", "48x96", "-rank", "2", orig, comp}, devnull); err != nil {
		t.Fatalf("rank-2 stat: %v", err)
	}
	// Error paths.
	if err := run([]string{orig, comp}, devnull); err == nil {
		t.Fatal("expected usage error without -dims")
	}
	if err := run([]string{"-dims", "49x96", orig, comp}, devnull); err == nil {
		t.Fatal("expected dims mismatch error")
	}
	if err := run([]string{"-dims", "48xbad", orig, comp}, devnull); err == nil {
		t.Fatal("expected dims parse error")
	}
	if err := run([]string{"-dims", "48x96", orig, orig}, devnull); err == nil {
		t.Fatal("expected decode error for raw file as stream")
	}
}
