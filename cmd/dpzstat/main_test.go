package main

import (
	"os"
	"path/filepath"
	"testing"

	"dpz"
	"dpz/internal/dataset"
)

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	f := dataset.CESM("FLDSC", 48, 96, 121)
	orig := filepath.Join(dir, "f.f32")
	if err := dataset.WriteRawFloat32(f, orig); err != nil {
		t.Fatal(err)
	}
	res, err := dpz.CompressFloat64(f.Data, f.Dims, dpz.StrictOptions())
	if err != nil {
		t.Fatal(err)
	}
	comp := filepath.Join(dir, "f.dpz")
	if err := os.WriteFile(comp, res.Data, 0o644); err != nil {
		t.Fatal(err)
	}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()

	if err := run([]string{"-dims", "48x96", orig, comp}, devnull); err != nil {
		t.Fatalf("full-rank stat: %v", err)
	}
	if err := run([]string{"-dims", "48x96", "-rank", "2", orig, comp}, devnull); err != nil {
		t.Fatalf("rank-2 stat: %v", err)
	}
	// Error paths.
	if err := run([]string{orig, comp}, devnull); err == nil {
		t.Fatal("expected usage error without -dims")
	}
	if err := run([]string{"-dims", "49x96", orig, comp}, devnull); err == nil {
		t.Fatal("expected dims mismatch error")
	}
	if err := run([]string{"-dims", "48xbad", orig, comp}, devnull); err == nil {
		t.Fatal("expected dims parse error")
	}
	if err := run([]string{"-dims", "48x96", orig, orig}, devnull); err == nil {
		t.Fatal("expected decode error for raw file as stream")
	}
}

func TestRunVerifyFlag(t *testing.T) {
	dir := t.TempDir()
	f := dataset.CESM("FLDSC", 48, 96, 121)
	orig := filepath.Join(dir, "f.f32")
	if err := dataset.WriteRawFloat32(f, orig); err != nil {
		t.Fatal(err)
	}
	opts := dpz.StrictOptions()
	opts.TVE = dpz.Nines(7)
	res, err := dpz.CompressFloat64(f.Data, f.Dims, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.K < 2 {
		t.Fatalf("need K >= 2 for a best-effort fallback test, got %d", res.Stats.K)
	}
	comp := filepath.Join(dir, "f.dpz")
	if err := os.WriteFile(comp, res.Data, 0o644); err != nil {
		t.Fatal(err)
	}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()

	// Intact stream: -verify reports OK and stats still print.
	if err := run([]string{"-dims", "48x96", "-verify", orig, comp}, devnull); err != nil {
		t.Fatalf("verify on intact stream: %v", err)
	}

	// Damage the tail of the stream (the last rank's section payload):
	// -verify must flag it, then succeed via the best-effort decode.
	bad := append([]byte(nil), res.Data...)
	bad[len(bad)-8] ^= 0x20
	badPath := filepath.Join(dir, "bad.dpz")
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-dims", "48x96", "-verify", orig, badPath}, devnull); err != nil {
		t.Fatalf("best-effort stat on corrupt stream: %v", err)
	}
	// Without -verify the same stream must fail outright.
	if err := run([]string{"-dims", "48x96", orig, badPath}, devnull); err == nil {
		t.Fatal("corrupt stream decoded without -verify")
	}
}
