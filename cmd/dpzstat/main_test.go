package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dpz"
	"dpz/internal/dataset"
)

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	f := dataset.CESM("FLDSC", 48, 96, 121)
	orig := filepath.Join(dir, "f.f32")
	if err := dataset.WriteRawFloat32(f, orig); err != nil {
		t.Fatal(err)
	}
	res, err := dpz.CompressFloat64(f.Data, f.Dims, dpz.StrictOptions())
	if err != nil {
		t.Fatal(err)
	}
	comp := filepath.Join(dir, "f.dpz")
	if err := os.WriteFile(comp, res.Data, 0o644); err != nil {
		t.Fatal(err)
	}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()

	if err := run([]string{"-dims", "48x96", orig, comp}, devnull); err != nil {
		t.Fatalf("full-rank stat: %v", err)
	}
	if err := run([]string{"-dims", "48x96", "-rank", "2", orig, comp}, devnull); err != nil {
		t.Fatalf("rank-2 stat: %v", err)
	}
	// Error paths.
	if err := run([]string{orig, comp}, devnull); err == nil {
		t.Fatal("expected usage error without -dims")
	}
	if err := run([]string{"-dims", "49x96", orig, comp}, devnull); err == nil {
		t.Fatal("expected dims mismatch error")
	}
	if err := run([]string{"-dims", "48xbad", orig, comp}, devnull); err == nil {
		t.Fatal("expected dims parse error")
	}
	if err := run([]string{"-dims", "48x96", orig, orig}, devnull); err == nil {
		t.Fatal("expected decode error for raw file as stream")
	}
}

func TestRunVerifyFlag(t *testing.T) {
	dir := t.TempDir()
	f := dataset.CESM("FLDSC", 48, 96, 121)
	orig := filepath.Join(dir, "f.f32")
	if err := dataset.WriteRawFloat32(f, orig); err != nil {
		t.Fatal(err)
	}
	opts := dpz.StrictOptions()
	opts.TVE = dpz.Nines(7)
	res, err := dpz.CompressFloat64(f.Data, f.Dims, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.K < 2 {
		t.Fatalf("need K >= 2 for a best-effort fallback test, got %d", res.Stats.K)
	}
	comp := filepath.Join(dir, "f.dpz")
	if err := os.WriteFile(comp, res.Data, 0o644); err != nil {
		t.Fatal(err)
	}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()

	// Intact stream: -verify reports OK and stats still print.
	if err := run([]string{"-dims", "48x96", "-verify", orig, comp}, devnull); err != nil {
		t.Fatalf("verify on intact stream: %v", err)
	}

	// Damage the last rank's section payload (skipping past the trailing
	// retrieval index, which decoding tolerates by design): -verify must
	// flag it, then succeed via the best-effort decode.
	info, err := dpz.Stat(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	idxBytes := info.Sections[len(info.Sections)-1].CompressedBytes + 20
	bad := append([]byte(nil), res.Data...)
	bad[len(bad)-idxBytes-8] ^= 0x20
	badPath := filepath.Join(dir, "bad.dpz")
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-dims", "48x96", "-verify", orig, badPath}, devnull); err != nil {
		t.Fatalf("best-effort stat on corrupt stream: %v", err)
	}
	// Without -verify the same stream must fail outright.
	if err := run([]string{"-dims", "48x96", orig, badPath}, devnull); err == nil {
		t.Fatal("corrupt stream decoded without -verify")
	}
}

func TestStatOnlyAndJSON(t *testing.T) {
	dir := t.TempDir()
	f := dataset.CESM("FLDSC", 48, 96, 121)
	orig := filepath.Join(dir, "f.f32")
	if err := dataset.WriteRawFloat32(f, orig); err != nil {
		t.Fatal(err)
	}
	res, err := dpz.CompressFloat64(f.Data, f.Dims, dpz.StrictOptions())
	if err != nil {
		t.Fatal(err)
	}
	comp := filepath.Join(dir, "f.dpz")
	if err := os.WriteFile(comp, res.Data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Single-arg metadata-only mode, text and JSON.
	var text bytes.Buffer
	if err := run([]string{comp}, &text); err != nil {
		t.Fatalf("stat-only: %v", err)
	}
	if !strings.Contains(text.String(), "sections:") {
		t.Fatalf("stat-only output missing sections:\n%s", text.String())
	}
	// The retrieval index block: tile count and cumulative energy per rank.
	if !strings.Contains(text.String(), "index:        1 tile summaries") {
		t.Fatalf("stat-only output missing index line:\n%s", text.String())
	}
	if !strings.Contains(text.String(), "r1=") {
		t.Fatalf("stat-only output missing rank energy line:\n%s", text.String())
	}
	// An index-less (v2) stream reports "none".
	v2opts := dpz.StrictOptions()
	v2opts.NoIndex = true
	v2res, err := dpz.CompressFloat64(f.Data, f.Dims, v2opts)
	if err != nil {
		t.Fatal(err)
	}
	v2comp := filepath.Join(dir, "v2.dpz")
	if err := os.WriteFile(v2comp, v2res.Data, 0o644); err != nil {
		t.Fatal(err)
	}
	var v2text bytes.Buffer
	if err := run([]string{v2comp}, &v2text); err != nil {
		t.Fatalf("stat-only v2: %v", err)
	}
	if !strings.Contains(v2text.String(), "index:        none") {
		t.Fatalf("v2 stat-only output missing index-none line:\n%s", v2text.String())
	}
	var js bytes.Buffer
	if err := run([]string{"-json", comp}, &js); err != nil {
		t.Fatalf("stat-only -json: %v", err)
	}
	var rep struct {
		Stream  map[string]any `json:"stream"`
		Quality map[string]any `json:"quality"`
	}
	if err := json.Unmarshal(js.Bytes(), &rep); err != nil {
		t.Fatalf("-json output is not JSON: %v\n%s", err, js.String())
	}
	if rep.Stream == nil || rep.Quality != nil {
		t.Fatalf("-json stat-only report malformed: %s", js.String())
	}
	// The JSON metadata must match dpz.Stat exactly — the shared rendering
	// path with the dpzd /v1/stat endpoint.
	info, err := dpz.Stat(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(info)
	var want map[string]any
	if err := json.Unmarshal(wantJSON, &want); err != nil {
		t.Fatal(err)
	}
	if len(rep.Stream) != len(want) {
		t.Fatalf("stream block has %d keys, dpz.Stat has %d", len(rep.Stream), len(want))
	}

	// Two-arg mode with -json carries both blocks.
	js.Reset()
	if err := run([]string{"-json", "-dims", "48x96", orig, comp}, &js); err != nil {
		t.Fatalf("quality -json: %v", err)
	}
	if err := json.Unmarshal(js.Bytes(), &rep); err != nil {
		t.Fatalf("quality -json output is not JSON: %v", err)
	}
	if rep.Stream == nil || rep.Quality == nil {
		t.Fatalf("quality -json report malformed: %s", js.String())
	}
	if _, ok := rep.Quality["psnr_db"]; !ok {
		t.Fatalf("quality block missing psnr_db: %s", js.String())
	}

	// Garbage stream errors out in both modes.
	junk := filepath.Join(dir, "junk.dpz")
	if err := os.WriteFile(junk, []byte("not a stream"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{junk}, io.Discard); err == nil {
		t.Fatal("stat-only accepted garbage")
	}
	if err := run([]string{"-json", junk}, io.Discard); err == nil {
		t.Fatal("stat-only -json accepted garbage")
	}
}
