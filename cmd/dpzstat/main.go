// Command dpzstat inspects DPZ streams. With just a stream it prints the
// container metadata (dims, block shape, k, sections, compression ratio)
// without decompressing anything; given the original raw float32 field as
// well it also measures reconstruction quality: PSNR, SSIM (2-D), mean
// relative error θ, max error.
//
// Usage:
//
//	dpzstat compressed.dpz                                      # metadata only
//	dpzstat -json compressed.dpz                                # same, as JSON
//	dpzstat -dims 180x360 original.f32 compressed.dpz           # + quality
//	dpzstat -dims 180x360 -rank 4 original.f32 compressed.dpz   # preview quality
//	dpzstat -dims 180x360 -verify original.f32 compressed.dpz   # checksum + best-effort
//
// The -json output of the metadata block is the same rendering the dpzd
// daemon serves from /v1/stat (both are dpz.StreamInfo), so tooling can
// consume either source interchangeably.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"dpz"
	"dpz/internal/dataset"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "dpzstat: %v\n", err)
		os.Exit(1)
	}
}

// quality is the reconstruction-quality block of the -json report.
type quality struct {
	PSNR       float64  `json:"psnr_db"`
	SSIM       *float64 `json:"ssim,omitempty"`
	MeanTheta  float64  `json:"mean_rel_err"`
	MaxAbsErr  float64  `json:"max_abs_err"`
	Rank       int      `json:"rank,omitempty"`
	Integrity  string   `json:"integrity,omitempty"`
	Recovered  int      `json:"recovered_components,omitempty"`
	StoredRank int      `json:"stored_components,omitempty"`
}

// report is the full -json document.
type report struct {
	Stream  *dpz.StreamInfo `json:"stream"`
	Quality *quality        `json:"quality,omitempty"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dpzstat", flag.ContinueOnError)
	dimsStr := fs.String("dims", "", "original dimensions, e.g. 180x360 (only with an original file)")
	rank := fs.Int("rank", 0, "decompress with only the leading components (0 = all)")
	verify := fs.Bool("verify", false, "check stream checksums; degrade to a best-effort decode on corruption")
	jsonOut := fs.Bool("json", false, "emit the report as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()

	switch len(rest) {
	case 1:
		return statOnly(rest[0], *jsonOut, out)
	case 2:
		if *dimsStr == "" {
			return fmt.Errorf("usage: dpzstat -dims AxB [-rank K] [-verify] [-json] original.f32 compressed.dpz")
		}
		return statQuality(rest[0], rest[1], *dimsStr, *rank, *verify, *jsonOut, out)
	}
	return fmt.Errorf("usage: dpzstat [-json] compressed.dpz | dpzstat -dims AxB [-rank K] [-verify] [-json] original.f32 compressed.dpz")
}

// statOnly prints stream metadata without reconstructing anything — the
// same dpz.Stat path the dpzd /v1/stat endpoint serves.
func statOnly(path string, jsonOut bool, out io.Writer) error {
	stream, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	info, err := dpz.Stat(stream)
	if err != nil {
		return err
	}
	if jsonOut {
		return writeJSON(out, report{Stream: info})
	}
	fmt.Fprintf(out, "format:       v%d (%s)\n", info.Version, info.Transform)
	fmt.Fprintf(out, "values:       %d %v\n", info.Values, info.Dims)
	fmt.Fprintf(out, "blocks:       %dx%d, k=%d, %d-byte indices\n",
		info.Blocks, info.BlockLen, info.Components, info.IndexWidth)
	fmt.Fprintf(out, "compressed:   %d bytes (CR %.2fx, %.3f bits/value)\n",
		info.StreamBytes, info.CompressionRatio, info.BitRate)
	fmt.Fprintf(out, "standardized: %v\n", info.Standardized)
	if info.HasIndex {
		fmt.Fprintf(out, "index:        %d tile summaries\n", info.IndexTiles)
		if len(info.RankCumulativeEnergy) > 0 {
			fmt.Fprintf(out, "energy:      ")
			for r, e := range info.RankCumulativeEnergy {
				fmt.Fprintf(out, " r%d=%.4f", r+1, e)
			}
			fmt.Fprintf(out, "\n")
		}
	} else {
		fmt.Fprintf(out, "index:        none\n")
	}
	fmt.Fprintf(out, "sections:\n")
	for _, s := range info.Sections {
		sh := ""
		if s.Sharded {
			sh = " (sharded)"
		}
		fmt.Fprintf(out, "  %-12s %8d -> %8d bytes%s\n", s.Name, s.RawBytes, s.CompressedBytes, sh)
	}
	return nil
}

// statQuality is the original two-file mode: decompress and measure
// reconstruction quality against the original field.
func statQuality(origPath, streamPath, dimsStr string, rank int, verify, jsonOut bool, out io.Writer) error {
	dims, err := dpz.ParseDims(dimsStr)
	if err != nil {
		return err
	}
	orig, err := dataset.ReadRawFloat32(origPath, dims)
	if err != nil {
		return err
	}
	stream, err := os.ReadFile(streamPath)
	if err != nil {
		return err
	}
	q := quality{Rank: rank}
	var recon []float64
	var gotDims []int
	if verify {
		if verr := dpz.Verify(stream); verr != nil {
			q.Integrity = fmt.Sprintf("CORRUPT (%v)", verr)
			if !jsonOut {
				fmt.Fprintf(out, "integrity:    %s\n", q.Integrity)
			}
			recon, gotDims, err = dpz.DecompressBestEffortFloat64(stream)
			var ce *dpz.CorruptionError
			if errors.As(err, &ce) && recon != nil {
				q.Recovered, q.StoredRank = ce.RecoveredRank, ce.StoredRank
				if !jsonOut {
					fmt.Fprintf(out, "best-effort:  recovered %d of %d components\n",
						ce.RecoveredRank, ce.StoredRank)
				}
				err = nil
			}
			if err != nil {
				return err
			}
		} else {
			q.Integrity = "OK"
			if !jsonOut {
				fmt.Fprintf(out, "integrity:    OK\n")
			}
			recon, gotDims, err = dpz.DecompressRankFloat64(stream, rank)
			if err != nil {
				return err
			}
		}
	} else {
		recon, gotDims, err = dpz.DecompressRankFloat64(stream, rank)
		if err != nil {
			return err
		}
	}
	if len(gotDims) != len(dims) {
		return fmt.Errorf("stream dims %v do not match -dims %v", gotDims, dims)
	}
	for i := range dims {
		if gotDims[i] != dims[i] {
			return fmt.Errorf("stream dims %v do not match -dims %v", gotDims, dims)
		}
	}
	q.PSNR = dpz.PSNR(orig.Data, recon)
	q.MeanTheta = dpz.MeanRelativeError(orig.Data, recon)
	q.MaxAbsErr = dpz.MaxAbsError(orig.Data, recon)
	if len(dims) == 2 {
		s := dpz.SSIM(orig.Data, recon, dims[0], dims[1])
		q.SSIM = &s
	}
	if jsonOut {
		info, err := dpz.Stat(stream)
		if err != nil {
			return err
		}
		return writeJSON(out, report{Stream: info, Quality: &q})
	}
	cr := dpz.CompressionRatio(4*orig.Len(), len(stream))
	fmt.Fprintf(out, "values:       %d %v\n", orig.Len(), dims)
	fmt.Fprintf(out, "compressed:   %d bytes (CR %.2fx, %.3f bits/value)\n",
		len(stream), cr, dpz.BitRate(cr, 32))
	fmt.Fprintf(out, "PSNR:         %.2f dB\n", q.PSNR)
	fmt.Fprintf(out, "mean θ:       %.4g\n", q.MeanTheta)
	fmt.Fprintf(out, "max |err|:    %.4g\n", q.MaxAbsErr)
	if q.SSIM != nil {
		fmt.Fprintf(out, "SSIM:         %.4f\n", *q.SSIM)
	}
	if rank > 0 {
		fmt.Fprintf(out, "(progressive: %d leading components)\n", rank)
	}
	return nil
}

func writeJSON(out io.Writer, v any) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
