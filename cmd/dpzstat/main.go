// Command dpzstat reports the reconstruction quality of a DPZ stream
// against the original raw float32 field: PSNR, SSIM (2-D), mean relative
// error θ, max error, compression ratio and bit rate.
//
// Usage:
//
//	dpzstat -dims 180x360 original.f32 compressed.dpz
//	dpzstat -dims 180x360 -rank 4 original.f32 compressed.dpz   # preview quality
//	dpzstat -dims 180x360 -verify original.f32 compressed.dpz   # checksum + best-effort
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dpz"
	"dpz/internal/dataset"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "dpzstat: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("dpzstat", flag.ContinueOnError)
	dimsStr := fs.String("dims", "", "original dimensions, e.g. 180x360")
	rank := fs.Int("rank", 0, "decompress with only the leading components (0 = all)")
	verify := fs.Bool("verify", false, "check stream checksums; degrade to a best-effort decode on corruption")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) != 2 || *dimsStr == "" {
		return fmt.Errorf("usage: dpzstat -dims AxB [-rank K] [-verify] original.f32 compressed.dpz")
	}
	dims, err := parseDims(*dimsStr)
	if err != nil {
		return err
	}
	orig, err := dataset.ReadRawFloat32(rest[0], dims)
	if err != nil {
		return err
	}
	stream, err := os.ReadFile(rest[1])
	if err != nil {
		return err
	}
	var recon []float64
	var gotDims []int
	if *verify {
		if verr := dpz.Verify(stream); verr != nil {
			fmt.Fprintf(out, "integrity:    CORRUPT (%v)\n", verr)
			recon, gotDims, err = dpz.DecompressBestEffortFloat64(stream)
			var ce *dpz.CorruptionError
			if errors.As(err, &ce) && recon != nil {
				fmt.Fprintf(out, "best-effort:  recovered %d of %d components\n",
					ce.RecoveredRank, ce.StoredRank)
				err = nil
			}
			if err != nil {
				return err
			}
		} else {
			fmt.Fprintf(out, "integrity:    OK\n")
			recon, gotDims, err = dpz.DecompressRankFloat64(stream, *rank)
			if err != nil {
				return err
			}
		}
	} else {
		recon, gotDims, err = dpz.DecompressRankFloat64(stream, *rank)
		if err != nil {
			return err
		}
	}
	if len(gotDims) != len(dims) {
		return fmt.Errorf("stream dims %v do not match -dims %v", gotDims, dims)
	}
	for i := range dims {
		if gotDims[i] != dims[i] {
			return fmt.Errorf("stream dims %v do not match -dims %v", gotDims, dims)
		}
	}
	cr := dpz.CompressionRatio(4*orig.Len(), len(stream))
	fmt.Fprintf(out, "values:       %d %v\n", orig.Len(), dims)
	fmt.Fprintf(out, "compressed:   %d bytes (CR %.2fx, %.3f bits/value)\n",
		len(stream), cr, dpz.BitRate(cr, 32))
	fmt.Fprintf(out, "PSNR:         %.2f dB\n", dpz.PSNR(orig.Data, recon))
	fmt.Fprintf(out, "mean θ:       %.4g\n", dpz.MeanRelativeError(orig.Data, recon))
	fmt.Fprintf(out, "max |err|:    %.4g\n", dpz.MaxAbsError(orig.Data, recon))
	if len(dims) == 2 {
		fmt.Fprintf(out, "SSIM:         %.4f\n", dpz.SSIM(orig.Data, recon, dims[0], dims[1]))
	}
	if *rank > 0 {
		fmt.Fprintf(out, "(progressive: %d leading components)\n", *rank)
	}
	return nil
}

func parseDims(s string) ([]int, error) {
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) < 1 || len(parts) > 4 {
		return nil, fmt.Errorf("dims %q must have 1-4 components", s)
	}
	dims := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad dimension %q in %q", p, s)
		}
		dims[i] = v
	}
	return dims, nil
}
