// Command dpz compresses and decompresses raw little-endian float32 files
// (the SDRBench layout) with the DPZ algorithm.
//
// Usage:
//
//	dpz -z -dims 1800x3600 -scheme strict -tve 5 in.f32 out.dpz
//	dpz -d out.dpz recon.f32
//	dpz -estimate -dims 128x128x128 in.f32
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"dpz"
	"dpz/internal/dataset"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "dpz: %v\n", err)
		os.Exit(1)
	}
}

// run executes the CLI against args, writing human output to out.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dpz", flag.ContinueOnError)
	var (
		compress   = fs.Bool("z", false, "compress (requires -dims)")
		decompress = fs.Bool("d", false, "decompress")
		estimate   = fs.Bool("estimate", false, "run the sampling estimate only (requires -dims)")
		dimsStr    = fs.String("dims", "", "input dimensions, e.g. 1800x3600 (slowest first)")
		scheme     = fs.String("scheme", "strict", "quantization scheme: loose (P=1e-3, 1-byte) or strict (P=1e-4, 2-byte)")
		selection  = fs.String("select", "tve", "k selection: tve or knee")
		nines      = fs.Int("tve", 5, "TVE threshold as a count of nines (3..8)")
		fit        = fs.String("fit", "1d", "knee curve fit: 1d or polyn")
		sampling   = fs.Bool("sampling", false, "enable the Algorithm 2 sampling strategy")
		basisReuse = fs.Bool("basis-reuse", false, "reuse PCA bases across similar tiles (quality-guarded; tve/sampling paths)")
		pcaEngine  = fs.String("pca", "exact", "stage 2 eigensolve engine: exact or sketch (randomized, guard-verified)")
		workers    = fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		zlevel     = fs.Int("zlevel", 0, "zlib add-on level 1-9 (0 = zlib default)")
		verify     = fs.Bool("verify", false, "after -z, decompress and report PSNR/θ")
		bestEffort = fs.Bool("best-effort", false, "with -d, salvage a partial reconstruction from a corrupt stream")
		index      = fs.String("index", "on", "with -z, write the retrieval index section: on or off (off = v2 stream, byte-identical to older releases)")
		ranks      = fs.Int("ranks", 0, "with -d, decode only the leading N components (progressive preview; 0 = all)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()

	opts, err := buildOptions(*scheme, *selection, *nines, *fit, *pcaEngine, *index, *sampling, *basisReuse, *workers, *zlevel)
	if err != nil {
		return err
	}

	// Ctrl-C / SIGTERM cancels the compression pipeline at its next
	// checkpoint instead of leaving a long run un-interruptible.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch {
	case *estimate:
		if len(rest) != 1 || *dimsStr == "" {
			return fmt.Errorf("usage: dpz -estimate -dims AxB file.f32")
		}
		dims, err := parseDims(*dimsStr)
		if err != nil {
			return err
		}
		field, err := dataset.ReadRawFloat32(rest[0], dims)
		if err != nil {
			return err
		}
		est, err := dpz.EstimateCompressionFloat64(field.Data, dims, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "estimated k:        %d\n", est.Ke)
		fmt.Fprintf(out, "mean VIF:           %.2f (low linearity: %v)\n", est.MeanVIF, est.LowLinearity)
		fmt.Fprintf(out, "predicted CR range: %.1fx .. %.1fx\n", est.CRLow, est.CRHigh)

	case *compress:
		if len(rest) != 2 || *dimsStr == "" {
			return fmt.Errorf("usage: dpz -z -dims AxB in.f32 out.dpz")
		}
		dims, err := parseDims(*dimsStr)
		if err != nil {
			return err
		}
		field, err := dataset.ReadRawFloat32(rest[0], dims)
		if err != nil {
			return err
		}
		res, err := dpz.CompressFloat64Context(ctx, field.Data, dims, opts)
		if err != nil {
			return err
		}
		if err := os.WriteFile(rest[1], res.Data, 0o644); err != nil {
			return err
		}
		s := res.Stats
		fmt.Fprintf(out, "compressed %d values: %d -> %d bytes (CR %.2fx, bit-rate %.3f)\n",
			len(field.Data), s.OrigBytes, s.CompressedBytes, s.CRTotal, dpz.BitRate(s.CRTotal, 32))
		fmt.Fprintf(out, "blocks %dx%d, k=%d, TVE=%.8f, stage CRs: %.2f / %.2f / %.2f\n",
			s.Blocks, s.BlockLen, s.K, s.TVEAchieved, s.CRStage12, s.CRStage3, s.CRZlib)
		if *verify {
			recon, _, err := dpz.DecompressFloat64(res.Data)
			if err != nil {
				return fmt.Errorf("verify: %w", err)
			}
			fmt.Fprintf(out, "verify: PSNR %.2f dB, mean θ %.3g, max abs err %.3g\n",
				dpz.PSNR(field.Data, recon),
				dpz.MeanRelativeError(field.Data, recon),
				dpz.MaxAbsError(field.Data, recon))
		}

	case *decompress:
		if len(rest) != 2 {
			return fmt.Errorf("usage: dpz -d [-best-effort] in.dpz out.f32")
		}
		buf, err := os.ReadFile(rest[0])
		if err != nil {
			return err
		}
		var (
			data []float64
			dims []int
		)
		if *ranks > 0 {
			var used int
			data, dims, used, err = dpz.DecompressRanksFloat64(buf, *ranks)
			if err == nil {
				fmt.Fprintf(out, "preview: decoded the leading %d components\n", used)
			}
		} else if *bestEffort {
			data, dims, err = dpz.DecompressBestEffortFloat64(buf)
			var ce *dpz.CorruptionError
			if errors.As(err, &ce) && data != nil {
				fmt.Fprintf(out, "stream corrupt (%v); salvaged %d of %d components\n",
					ce, ce.RecoveredRank, ce.StoredRank)
				err = nil
			}
		} else {
			data, dims, err = dpz.DecompressFloat64Context(ctx, buf, opts.Workers)
		}
		if err != nil {
			return err
		}
		field := &dataset.Field{Name: rest[1], Dims: dims, Data: data}
		if err := dataset.WriteRawFloat32(field, rest[1]); err != nil {
			return err
		}
		fmt.Fprintf(out, "decompressed %d values, dims %v -> %s\n", len(data), dims, rest[1])

	default:
		return fmt.Errorf("one of -z, -d, -estimate is required")
	}
	return nil
}

// buildOptions resolves the CLI knobs through dpz.OptionSpec — the same
// translation the dpzd server uses, which is what keeps `dpz -z` output
// byte-identical to a /v1/compress response for the same settings. The
// explicit nines check preserves the CLI's rejection of -tve 0 (the spec
// treats 0 as "default").
func buildOptions(scheme, selection string, nines int, fit, pcaEngine, index string, sampling, basisReuse bool, workers, zlevel int) (dpz.Options, error) {
	if nines == 0 {
		return dpz.Options{}, fmt.Errorf("tve nines 0 out of range")
	}
	return dpz.OptionSpec{
		Scheme:     scheme,
		Select:     selection,
		TVENines:   nines,
		Fit:        fit,
		Sampling:   sampling,
		Workers:    workers,
		ZLevel:     zlevel,
		BasisReuse: basisReuse,
		PCA:        pcaEngine,
		Index:      index,
	}.Options()
}

func parseDims(s string) ([]int, error) { return dpz.ParseDims(s) }
