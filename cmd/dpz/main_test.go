package main

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"dpz"
	"dpz/internal/dataset"
)

func TestParseDims(t *testing.T) {
	dims, err := parseDims("1800x3600")
	if err != nil || len(dims) != 2 || dims[0] != 1800 || dims[1] != 3600 {
		t.Fatalf("parseDims = %v, %v", dims, err)
	}
	dims, err = parseDims("128X128X128")
	if err != nil || len(dims) != 3 || dims[2] != 128 {
		t.Fatalf("case-insensitive parse = %v, %v", dims, err)
	}
	if _, err := parseDims(""); err == nil {
		t.Fatal("expected error for empty dims")
	}
	if _, err := parseDims("10x-5"); err == nil {
		t.Fatal("expected error for negative dim")
	}
	if _, err := parseDims("10xfoo"); err == nil {
		t.Fatal("expected error for non-numeric dim")
	}
	if _, err := parseDims("1x2x3x4x5"); err == nil {
		t.Fatal("expected error for too many dims")
	}
}

func TestBuildOptions(t *testing.T) {
	o, err := buildOptions("loose", "knee", 4, "polyn", "sketch", "on", true, false, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if o.P != 1e-3 || o.IndexBytes != dpz.Index1Byte {
		t.Fatalf("loose scheme = %+v", o)
	}
	if o.Selection != dpz.KneePoint || o.Fit != dpz.FitPoly {
		t.Fatalf("selection/fit = %+v", o)
	}
	if !o.UseSampling || o.Workers != 3 {
		t.Fatalf("sampling/workers = %+v", o)
	}
	if o.ZLevel != 6 {
		t.Fatalf("zlevel = %+v", o)
	}
	if o.TVE != dpz.Nines(4) {
		t.Fatalf("TVE = %v", o.TVE)
	}
	if !o.SketchPCA {
		t.Fatalf("pca engine sketch not threaded: %+v", o)
	}
	if o.NoIndex {
		t.Fatalf("index on produced NoIndex: %+v", o)
	}
	o, err = buildOptions("loose", "tve", 4, "1d", "exact", "off", false, false, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !o.NoIndex {
		t.Fatalf("index off not threaded: %+v", o)
	}

	if _, err := buildOptions("medium", "tve", 5, "1d", "exact", "on", false, false, 0, 0); err == nil {
		t.Fatal("expected error for unknown scheme")
	}
	if _, err := buildOptions("strict", "best", 5, "1d", "exact", "on", false, false, 0, 0); err == nil {
		t.Fatal("expected error for unknown selection")
	}
	if _, err := buildOptions("strict", "tve", 0, "1d", "exact", "on", false, false, 0, 0); err == nil {
		t.Fatal("expected error for zero nines")
	}
	if _, err := buildOptions("strict", "tve", 5, "cubic", "exact", "on", false, false, 0, 0); err == nil {
		t.Fatal("expected error for unknown fit")
	}
	if _, err := buildOptions("strict", "tve", 5, "1d", "exact", "on", false, false, 0, 10); err == nil {
		t.Fatal("expected error for out-of-range zlevel")
	}
	if _, err := buildOptions("strict", "tve", 5, "1d", "magic", "on", false, false, 0, 0); err == nil {
		t.Fatal("expected error for unknown pca engine")
	}
	if _, err := buildOptions("strict", "tve", 5, "1d", "exact", "maybe", false, false, 0, 0); err == nil {
		t.Fatal("expected error for unknown index mode")
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	f := dataset.CESM("FLDSC", 48, 96, 131)
	orig := filepath.Join(dir, "f.f32")
	if err := dataset.WriteRawFloat32(f, orig); err != nil {
		t.Fatal(err)
	}
	comp := filepath.Join(dir, "f.dpz")
	recon := filepath.Join(dir, "r.f32")

	if err := run([]string{"-z", "-dims", "48x96", "-scheme", "strict", "-tve", "4", "-verify", orig, comp}, io.Discard); err != nil {
		t.Fatalf("compress: %v", err)
	}
	if err := run([]string{"-d", comp, recon}, io.Discard); err != nil {
		t.Fatalf("decompress: %v", err)
	}
	got, err := dataset.ReadRawFloat32(recon, f.Dims)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Data) != f.Len() {
		t.Fatalf("recon has %d values", len(got.Data))
	}
	if err := run([]string{"-estimate", "-dims", "48x96", orig}, io.Discard); err != nil {
		t.Fatalf("estimate: %v", err)
	}
	// Progressive preview: -ranks decodes only the leading components.
	if err := run([]string{"-d", "-ranks", "1", comp, recon}, io.Discard); err != nil {
		t.Fatalf("rank-1 preview: %v", err)
	}
	preview, err := dataset.ReadRawFloat32(recon, f.Dims)
	if err != nil {
		t.Fatal(err)
	}
	if len(preview.Data) != f.Len() {
		t.Fatalf("preview has %d values", len(preview.Data))
	}
	// Index opt-out: -index off emits a v2 stream with no index section.
	compV2 := filepath.Join(dir, "v2.dpz")
	if err := run([]string{"-z", "-index", "off", "-dims", "48x96", "-tve", "4", orig, compV2}, io.Discard); err != nil {
		t.Fatalf("compress -index off: %v", err)
	}
	v2buf, err := os.ReadFile(compV2)
	if err != nil {
		t.Fatal(err)
	}
	if info, err := dpz.Stat(v2buf); err != nil || info.Version != 2 || info.HasIndex {
		t.Fatalf("-index off stream: info %+v, err %v", info, err)
	}
	// Error paths.
	if err := run([]string{orig}, io.Discard); err == nil {
		t.Fatal("expected mode error")
	}
	if err := run([]string{"-z", orig, comp}, io.Discard); err == nil {
		t.Fatal("expected missing -dims error")
	}
	if err := run([]string{"-d", orig, recon}, io.Discard); err == nil {
		t.Fatal("expected decode error for raw file")
	}
}

func TestRunBestEffortDecode(t *testing.T) {
	dir := t.TempDir()
	f := dataset.CESM("FLDSC", 48, 96, 131)
	orig := filepath.Join(dir, "f.f32")
	if err := dataset.WriteRawFloat32(f, orig); err != nil {
		t.Fatal(err)
	}
	opts := dpz.StrictOptions()
	opts.TVE = dpz.Nines(7)
	res, err := dpz.CompressFloat64(f.Data, f.Dims, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.K < 2 {
		t.Fatalf("need K >= 2, got %d", res.Stats.K)
	}
	// Damage the final data section's payload (the trailing retrieval
	// index is damage-tolerant by design, so aim just before it): strict
	// decode must fail, the best-effort path must still write a
	// reduced-rank reconstruction.
	info, err := dpz.Stat(res.Data)
	if err != nil {
		t.Fatal(err)
	}
	idxBytes := info.Sections[len(info.Sections)-1].CompressedBytes + 20
	bad := append([]byte(nil), res.Data...)
	bad[len(bad)-idxBytes-8] ^= 0x20
	badPath := filepath.Join(dir, "bad.dpz")
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	recon := filepath.Join(dir, "r.f32")
	if err := run([]string{"-d", badPath, recon}, io.Discard); err == nil {
		t.Fatal("strict decode accepted a corrupt stream")
	}
	if err := run([]string{"-d", "-best-effort", badPath, recon}, io.Discard); err != nil {
		t.Fatalf("best-effort decode: %v", err)
	}
	got, err := dataset.ReadRawFloat32(recon, f.Dims)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Data) != f.Len() {
		t.Fatalf("recon has %d values", len(got.Data))
	}
}
