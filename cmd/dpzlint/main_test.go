package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tempModule writes a minimal module and chdirs into it for the
// duration of the test.
func tempModule(t *testing.T, files map[string]string) {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module dpz\n\ngo 1.22\n"
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Chdir(dir)
}

const dirtyFile = `package p

func close(a, b float64) bool {
	return a == b
}
`

func TestRunFindings(t *testing.T) {
	tempModule(t, map[string]string{"p/p.go": dirtyFile})

	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 0 {
		t.Fatalf("without -werror: exit %d, stderr %q", code, errOut.String())
	}
	if !strings.Contains(out.String(), "floateq") {
		t.Fatalf("finding not printed:\n%s", out.String())
	}

	out.Reset()
	if code := run([]string{"-werror"}, &out, &errOut); code != 1 {
		t.Fatalf("with -werror: exit %d, want 1", code)
	}

	out.Reset()
	if code := run([]string{"-json"}, &out, &errOut); code != 0 {
		t.Fatalf("-json: exit %d", code)
	}
	var findings []map[string]any
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out.String())
	}
	if len(findings) != 1 || findings[0]["analyzer"] != "floateq" {
		t.Fatalf("unexpected JSON findings: %v", findings)
	}
	if findings[0]["file"] != "p/p.go" {
		t.Fatalf("finding path %v not module-relative", findings[0]["file"])
	}
}

func TestRunClean(t *testing.T) {
	tempModule(t, map[string]string{"p/p.go": "package p\n\nfunc ID(x int) int { return x }\n"})

	var out, errOut bytes.Buffer
	if code := run([]string{"-werror", "-json"}, &out, &errOut); code != 0 {
		t.Fatalf("clean module: exit %d, stderr %q", code, errOut.String())
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Fatalf("clean -json output = %q, want []", got)
	}
}

func TestRunTypeError(t *testing.T) {
	tempModule(t, map[string]string{"p/p.go": "package p\n\nfunc f() { undefined() }\n"})

	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("type error: exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "undefined") {
		t.Fatalf("type error not reported: %q", errOut.String())
	}
}

func TestRunList(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list: exit %d", code)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) < 6 {
		t.Fatalf("-list shows %d analyzers, want >= 6:\n%s", len(lines), out.String())
	}
	for _, name := range []string{"detloop", "scratchpair", "ctxflow", "floateq", "mutexio", "wrapcheck"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list missing %s", name)
		}
	}
}

func TestRunNonexistentPattern(t *testing.T) {
	tempModule(t, map[string]string{"p/p.go": "package p\n"})

	var out, errOut bytes.Buffer
	if code := run([]string{"./nope/..."}, &out, &errOut); code != 2 {
		t.Fatalf("nonexistent pattern: exit %d, want 2 (stderr %q)", code, errOut.String())
	}
	if errOut.Len() == 0 {
		t.Fatal("nonexistent pattern produced no error message")
	}
}

func TestRunPhase(t *testing.T) {
	// The file trips floateq (intra) only; fast must find it, deep must
	// not, and an unknown phase is a usage error.
	tempModule(t, map[string]string{"p/p.go": dirtyFile})

	var out, errOut bytes.Buffer
	if code := run([]string{"-phase", "fast"}, &out, &errOut); code != 0 {
		t.Fatalf("-phase fast: exit %d, stderr %q", code, errOut.String())
	}
	if !strings.Contains(out.String(), "floateq") {
		t.Fatalf("-phase fast missed the floateq finding:\n%s", out.String())
	}

	out.Reset()
	if code := run([]string{"-phase", "deep", "-werror"}, &out, &errOut); code != 0 {
		t.Fatalf("-phase deep: exit %d, stderr %q", code, errOut.String())
	}
	if got := strings.TrimSpace(out.String()); got != "" {
		t.Fatalf("-phase deep reported intra findings:\n%s", got)
	}

	if code := run([]string{"-phase", "bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("-phase bogus: exit %d, want 2", code)
	}
}

func TestRunBaselineRatchet(t *testing.T) {
	tempModule(t, map[string]string{"p/p.go": dirtyFile})

	// Capture the current findings as the baseline.
	var out, errOut bytes.Buffer
	if code := run([]string{"-json"}, &out, &errOut); code != 0 {
		t.Fatalf("baseline capture: exit %d", code)
	}
	if err := os.WriteFile("lint-baseline.json", out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	// The known finding is excused: -werror passes.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-werror", "-baseline", "lint-baseline.json"}, &out, &errOut); code != 0 {
		t.Fatalf("baselined finding still fails: exit %d, stderr %q", code, errOut.String())
	}
	if !strings.Contains(out.String(), "floateq") {
		t.Fatal("baselined finding no longer printed; the baseline must not hide output")
	}
	if !strings.Contains(errOut.String(), "all baselined") {
		t.Fatalf("missing baseline summary on stderr: %q", errOut.String())
	}

	// A new violation in another file is not excused.
	if err := os.WriteFile(filepath.Join("p", "q.go"), []byte("package p\n\nfunc far(a, b float64) bool {\n\treturn a == b\n}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-werror", "-baseline", "lint-baseline.json"}, &out, &errOut); code != 1 {
		t.Fatalf("new finding vs baseline: exit %d, want 1 (stderr %q)", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "1 not in baseline") {
		t.Fatalf("missing new-vs-baseline count: %q", errOut.String())
	}

	// A missing baseline file is a usage error, not an empty ratchet.
	if code := run([]string{"-werror", "-baseline", "no-such.json"}, &out, &errOut); code != 2 {
		t.Fatalf("missing baseline file: exit %d, want 2", code)
	}
}

func TestRunTiming(t *testing.T) {
	tempModule(t, map[string]string{"p/p.go": "package p\n\nfunc ID(x int) int { return x }\n"})

	var out, errOut bytes.Buffer
	if code := run([]string{"-timing"}, &out, &errOut); code != 0 {
		t.Fatalf("-timing: exit %d", code)
	}
	for _, want := range []string{"loaded", "phase all"} {
		if !strings.Contains(errOut.String(), want) {
			t.Errorf("-timing stderr missing %q:\n%s", want, errOut.String())
		}
	}
}
