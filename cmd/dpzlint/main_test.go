package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tempModule writes a minimal module and chdirs into it for the
// duration of the test.
func tempModule(t *testing.T, files map[string]string) {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module dpz\n\ngo 1.22\n"
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Chdir(dir)
}

const dirtyFile = `package p

func close(a, b float64) bool {
	return a == b
}
`

func TestRunFindings(t *testing.T) {
	tempModule(t, map[string]string{"p/p.go": dirtyFile})

	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 0 {
		t.Fatalf("without -werror: exit %d, stderr %q", code, errOut.String())
	}
	if !strings.Contains(out.String(), "floateq") {
		t.Fatalf("finding not printed:\n%s", out.String())
	}

	out.Reset()
	if code := run([]string{"-werror"}, &out, &errOut); code != 1 {
		t.Fatalf("with -werror: exit %d, want 1", code)
	}

	out.Reset()
	if code := run([]string{"-json"}, &out, &errOut); code != 0 {
		t.Fatalf("-json: exit %d", code)
	}
	var findings []map[string]any
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out.String())
	}
	if len(findings) != 1 || findings[0]["analyzer"] != "floateq" {
		t.Fatalf("unexpected JSON findings: %v", findings)
	}
	if findings[0]["file"] != "p/p.go" {
		t.Fatalf("finding path %v not module-relative", findings[0]["file"])
	}
}

func TestRunClean(t *testing.T) {
	tempModule(t, map[string]string{"p/p.go": "package p\n\nfunc ID(x int) int { return x }\n"})

	var out, errOut bytes.Buffer
	if code := run([]string{"-werror", "-json"}, &out, &errOut); code != 0 {
		t.Fatalf("clean module: exit %d, stderr %q", code, errOut.String())
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Fatalf("clean -json output = %q, want []", got)
	}
}

func TestRunTypeError(t *testing.T) {
	tempModule(t, map[string]string{"p/p.go": "package p\n\nfunc f() { undefined() }\n"})

	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("type error: exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "undefined") {
		t.Fatalf("type error not reported: %q", errOut.String())
	}
}

func TestRunList(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list: exit %d", code)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) < 6 {
		t.Fatalf("-list shows %d analyzers, want >= 6:\n%s", len(lines), out.String())
	}
	for _, name := range []string{"detloop", "scratchpair", "ctxflow", "floateq", "mutexio", "wrapcheck"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list missing %s", name)
		}
	}
}
