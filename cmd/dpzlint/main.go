// Command dpzlint runs dpz's project-specific static analyzers over the
// module: determinism (detloop, walltime, dettaint), pooling
// (scratchpair, scratchflow), concurrency (ctxflow, goleak, lockorder,
// mutexio), float-equality (floateq) and error-wrapping (wrapcheck)
// invariants that go vet cannot know about. See docs/LINT.md.
//
// Usage:
//
//	go run ./cmd/dpzlint [-json] [-werror] [-list] [-phase fast|deep|all]
//	                     [-baseline file.json] [-timing] [patterns...]
//
// Patterns are package directories relative to the working directory;
// a trailing /... loads the whole subtree. The default is ./... (the
// entire module). Non-test files only.
//
// -phase selects the analyzer tier: "fast" runs the per-package
// intra-function analyzers, "deep" runs the interprocedural ones (call
// graph + fixpoint summaries over the whole load), "all" (default) runs
// both.
//
// -baseline reads a JSON findings file (the output of a previous -json
// run) and turns -werror into a ratchet: known findings still print,
// but only findings absent from the baseline fail the run. Baseline
// entries are matched by (file, analyzer, message) — line drift alone
// does not un-baseline a finding — and each entry excuses at most as
// many findings as it occurs in the file.
//
// Exit status: 0 when clean (or findings exist but -werror is not set,
// or all findings are baselined), 1 when -werror is set and new
// findings exist, 2 on load/type/usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dpz/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dpzlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array (machine-readable, deterministic)")
	werror := fs.Bool("werror", false, "exit non-zero when any non-baselined finding survives (CI mode)")
	list := fs.Bool("list", false, "list registered analyzers and exit")
	phase := fs.String("phase", "all", "analyzer tier to run: fast (intra-function), deep (interprocedural), or all")
	baselinePath := fs.String("baseline", "", "JSON findings file; with -werror, only findings absent from it fail")
	timing := fs.Bool("timing", false, "print load/analysis wall time to stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			tier := "fast"
			if a.RunProgram != nil {
				tier = "deep"
			}
			fmt.Fprintf(stdout, "%-12s %-5s %s\n", a.Name, tier, a.Doc)
		}
		return 0
	}

	var analyzers []*analysis.Analyzer
	switch *phase {
	case "all":
		analyzers = analysis.All()
	case "fast":
		analyzers = analysis.Intra()
	case "deep":
		analyzers = analysis.Deep()
	default:
		fmt.Fprintf(stderr, "dpzlint: unknown -phase %q (want fast, deep or all)\n", *phase)
		return 2
	}

	var baseline map[baselineKey]int
	if *baselinePath != "" {
		var err error
		baseline, err = loadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, "dpzlint:", err)
			return 2
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "dpzlint:", err)
		return 2
	}
	root, err := findModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "dpzlint:", err)
		return 2
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "dpzlint:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	for _, p := range patterns {
		dir := strings.TrimSuffix(p, "...")
		dir = strings.TrimSuffix(dir, "/")
		if dir == "" {
			dir = "."
		}
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(cwd, dir)
		}
		dirs = append(dirs, dir)
	}

	loadStart := time.Now()
	pkgs, err := loader.LoadDirs(dirs)
	if err != nil {
		fmt.Fprintln(stderr, "dpzlint:", err)
		return 2
	}
	if *timing {
		fmt.Fprintf(stderr, "dpzlint: loaded %d package(s) in %v\n", len(pkgs), time.Since(loadStart).Round(time.Millisecond))
	}
	status := 0
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(stderr, "dpzlint: %s: %v\n", pkg.ImportPath, terr)
			status = 2
		}
	}
	if status != 0 {
		return status
	}

	runStart := time.Now()
	findings := analysis.Run(root, pkgs, analyzers)
	if *timing {
		fmt.Fprintf(stderr, "dpzlint: phase %s ran %d analyzer(s) in %v\n", *phase, len(analyzers), time.Since(runStart).Round(time.Millisecond))
	}
	if *jsonOut {
		b, err := analysis.MarshalJSON(findings)
		if err != nil {
			fmt.Fprintln(stderr, "dpzlint:", err)
			return 2
		}
		stdout.Write(b)
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f.String())
		}
	}

	fresh := newFindings(findings, baseline)
	if len(fresh) > 0 && *werror {
		if baseline != nil {
			fmt.Fprintf(stderr, "dpzlint: %d finding(s), %d not in baseline %s\n", len(findings), len(fresh), *baselinePath)
		} else {
			fmt.Fprintf(stderr, "dpzlint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	if baseline != nil && len(findings) > 0 && len(fresh) == 0 && !*jsonOut {
		fmt.Fprintf(stderr, "dpzlint: %d finding(s), all baselined\n", len(findings))
	}
	return 0
}

// baselineKey identifies a finding independent of its line and column,
// so pure position drift does not un-baseline it.
type baselineKey struct {
	file, analyzer, message string
}

// loadBaseline reads a -json findings file into a multiset.
func loadBaseline(path string) (map[baselineKey]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []analysis.Finding
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	counts := make(map[baselineKey]int, len(entries))
	for _, e := range entries {
		counts[baselineKey{e.File, e.Analyzer, e.Message}]++
	}
	return counts, nil
}

// newFindings returns the findings not excused by the baseline. Each
// baseline entry excuses at most as many findings as its multiplicity:
// a duplicated violation is new even when one copy is baselined.
func newFindings(findings []analysis.Finding, baseline map[baselineKey]int) []analysis.Finding {
	if baseline == nil {
		return findings
	}
	remaining := make(map[baselineKey]int, len(baseline))
	for k, v := range baseline {
		remaining[k] = v
	}
	var fresh []analysis.Finding
	for _, f := range findings {
		k := baselineKey{f.File, f.Analyzer, f.Message}
		if remaining[k] > 0 {
			remaining[k]--
			continue
		}
		fresh = append(fresh, f)
	}
	return fresh
}

// findModuleRoot walks up from dir to the directory containing go.mod.
func findModuleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
