// Command dpzlint runs dpz's project-specific static analyzers over the
// module: determinism (detloop, walltime), pooling (scratchpair),
// cancellation (ctxflow), float-equality (floateq), lock-across-I/O
// (mutexio) and error-wrapping (wrapcheck) invariants that go vet
// cannot know about. See docs/LINT.md.
//
// Usage:
//
//	go run ./cmd/dpzlint [-json] [-werror] [-list] [patterns...]
//
// Patterns are package directories relative to the working directory;
// a trailing /... loads the whole subtree. The default is ./... (the
// entire module). Non-test files only.
//
// Exit status: 0 when clean (or findings exist but -werror is not set),
// 1 when -werror is set and findings exist, 2 on load/type errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"dpz/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dpzlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array (machine-readable, deterministic)")
	werror := fs.Bool("werror", false, "exit non-zero when any finding survives (CI mode)")
	list := fs.Bool("list", false, "list registered analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "dpzlint:", err)
		return 2
	}
	root, err := findModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "dpzlint:", err)
		return 2
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "dpzlint:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	for _, p := range patterns {
		dir := strings.TrimSuffix(p, "...")
		dir = strings.TrimSuffix(dir, "/")
		if dir == "" {
			dir = "."
		}
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(cwd, dir)
		}
		dirs = append(dirs, dir)
	}

	pkgs, err := loader.LoadDirs(dirs)
	if err != nil {
		fmt.Fprintln(stderr, "dpzlint:", err)
		return 2
	}
	status := 0
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(stderr, "dpzlint: %s: %v\n", pkg.ImportPath, terr)
			status = 2
		}
	}
	if status != 0 {
		return status
	}

	findings := analysis.Run(root, pkgs, analysis.All())
	if *jsonOut {
		b, err := analysis.MarshalJSON(findings)
		if err != nil {
			fmt.Fprintln(stderr, "dpzlint:", err)
			return 2
		}
		stdout.Write(b)
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f.String())
		}
	}
	if len(findings) > 0 && *werror {
		fmt.Fprintf(stderr, "dpzlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// findModuleRoot walks up from dir to the directory containing go.mod.
func findModuleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
