// Command datagen writes the synthetic evaluation datasets as raw
// little-endian float32 files (the SDRBench layout), so the dpz CLI and
// external tools can consume them.
//
// Usage:
//
//	datagen -list
//	datagen -name FLDSC -scale 0.1 -out fldsc.f32
//	datagen -all -scale 0.05 -dir data/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dpz/internal/dataset"
)

func main() {
	var (
		name  = flag.String("name", "", "dataset to generate (see -list)")
		all   = flag.Bool("all", false, "generate every dataset")
		scale = flag.Float64("scale", 0.08, "scale relative to the paper's native sizes (0,1]")
		out   = flag.String("out", "", "output file (with -name)")
		dir   = flag.String("dir", ".", "output directory (with -all)")
		list  = flag.Bool("list", false, "list dataset names and exit")
		pgm   = flag.Bool("pgm", false, "also write a PGM preview for 2-D datasets")
	)
	flag.Parse()

	fail := func(format string, a ...interface{}) {
		fmt.Fprintf(os.Stderr, "datagen: "+format+"\n", a...)
		os.Exit(1)
	}

	if *list {
		for _, n := range dataset.Names {
			fmt.Println(n)
		}
		return
	}

	write := func(n, path string) {
		f, err := dataset.Generate(n, *scale)
		if err != nil {
			fail("%v", err)
		}
		if err := dataset.WriteRawFloat32(f, path); err != nil {
			fail("%v", err)
		}
		fmt.Printf("%-10s dims %v -> %s (%d values)\n", n, f.Dims, path, f.Len())
		if *pgm && len(f.Dims) == 2 {
			img := strings.TrimSuffix(path, filepath.Ext(path)) + ".pgm"
			if err := dataset.WritePGM(f, img); err != nil {
				fail("%v", err)
			}
			fmt.Printf("%-10s preview -> %s\n", n, img)
		}
	}

	switch {
	case *all:
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			fail("%v", err)
		}
		for _, n := range dataset.Names {
			fname := strings.ToLower(strings.ReplaceAll(n, "-", "_")) + ".f32"
			write(n, filepath.Join(*dir, fname))
		}
	case *name != "":
		path := *out
		if path == "" {
			path = strings.ToLower(strings.ReplaceAll(*name, "-", "_")) + ".f32"
		}
		write(*name, path)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
