package dpz_test

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"dpz"
	"dpz/internal/dataset"
)

// indexField builds a field whose four equal slabs are engineered for
// retrieval tests: slabs 0 and 2 carry the same pattern (nearest
// neighbours in any sensible similarity), slab 1 a different frequency,
// and slab 3 the slab-0 pattern shifted up by a large constant — so value
// ranges separate the slabs cleanly for range-query oracles.
func indexField(rows, cols int) ([]float64, []int) {
	if rows%4 != 0 {
		panic("rows must split into 4 slabs")
	}
	data := make([]float64, rows*cols)
	slab := rows / 4
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			x, y := float64(r%slab), float64(c)
			var v float64
			switch r / slab {
			case 0, 2:
				v = math.Sin(x/3) + math.Cos(y/5)
			case 1:
				v = math.Sin(x/11) * math.Cos(y/2)
			case 3:
				v = math.Sin(x/3) + math.Cos(y/5) + 50
			}
			data[r*cols+c] = v
		}
	}
	return data, []int{rows, cols}
}

// rawF32FromF64 lays out float64 values as little-endian float32, the
// tiled-compression input format.
func rawF32FromF64(data []float64) []byte {
	f := &dataset.Field{Data: data}
	return rawF32(f)
}

func compressIndexArchive(t *testing.T, data []float64, dims []int, tileRows int, opts dpz.Options) []byte {
	t.Helper()
	var arc bytes.Buffer
	if _, err := dpz.CompressTiled(bytes.NewReader(rawF32FromF64(data)), dims, tileRows, opts, &arc); err != nil {
		t.Fatal(err)
	}
	return arc.Bytes()
}

// TestTiledIndexOracle validates range and similarity queries against
// brute-force oracles computed from full tile decodes — the index must
// give the same answers without inflating any data section.
func TestTiledIndexOracle(t *testing.T) {
	data, dims := indexField(96, 128)
	opts := dpz.StrictOptions()
	opts.TVE = dpz.Nines(6)
	arc := compressIndexArchive(t, data, dims, 24, opts)

	tr, err := dpz.OpenTiled(bytes.NewReader(arc), int64(len(arc)))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := tr.Index()
	if err != nil {
		t.Fatalf("Index: %v", err)
	}
	if len(ix.Tiles) != tr.Tiles() {
		t.Fatalf("index has %d tiles, archive %d", len(ix.Tiles), tr.Tiles())
	}

	// Per-tile summary oracle: statistics computed brute-force from the
	// original slab values. Min/max must match exactly (the compressor
	// records them from the same float32-widened inputs); mean/RMS are
	// accumulated in one pass, allow rounding slack.
	slabVals := 24 * 128
	for i, s := range ix.Tiles {
		slab := data[i*slabVals : (i+1)*slabVals]
		minV, maxV, sum, sumsq := math.Inf(1), math.Inf(-1), 0.0, 0.0
		for _, v := range slab {
			w := float64(float32(v)) // tiled input is float32
			minV, maxV = math.Min(minV, w), math.Max(maxV, w)
			sum += w
			sumsq += w * w
		}
		if s.Count != slabVals {
			t.Fatalf("tile %d count %d, want %d", i, s.Count, slabVals)
		}
		if s.Min != minV || s.Max != maxV {
			t.Fatalf("tile %d min/max %v/%v, oracle %v/%v", i, s.Min, s.Max, minV, maxV)
		}
		if mean := sum / float64(slabVals); math.Abs(s.Mean-mean) > 1e-9*(1+math.Abs(mean)) {
			t.Fatalf("tile %d mean %v, oracle %v", i, s.Mean, mean)
		}
		if rms := math.Sqrt(sumsq / float64(slabVals)); math.Abs(s.RMS-rms) > 1e-9*(1+rms) {
			t.Fatalf("tile %d rms %v, oracle %v", i, s.RMS, rms)
		}
	}

	// Range-query oracle: slab 3 sits 50 above the rest, so max > 25
	// selects exactly the tiles whose decoded values exceed it.
	pred, err := dpz.ParsePredicate("max>25")
	if err != nil {
		t.Fatal(err)
	}
	matches, err := ix.Range(pred)
	if err != nil {
		t.Fatal(err)
	}
	var oracle []int
	for i := 0; i < tr.Tiles(); i++ {
		vals, _, err := tr.Tile(i) // brute force: full decode
		if err != nil {
			t.Fatal(err)
		}
		hi := math.Inf(-1)
		for _, v := range vals {
			hi = math.Max(hi, v)
		}
		if hi > 25 {
			oracle = append(oracle, i)
		}
	}
	if len(oracle) != 1 || oracle[0] != 3 {
		t.Fatalf("oracle selected %v, field construction broken", oracle)
	}
	if len(matches) != 1 || matches[0].Tile != 3 {
		t.Fatalf("Range(max>25) = %+v, oracle %v", matches, oracle)
	}

	// Similarity oracle: nearest neighbour by L2 distance over the full
	// decodes. Slabs 0 and 2 are the same pattern, so each must pick the
	// other; the index's coefficient-space TopK must agree.
	decoded := make([][]float64, tr.Tiles())
	for i := range decoded {
		decoded[i], _, err = tr.Tile(i)
		if err != nil {
			t.Fatal(err)
		}
	}
	nearest := func(i int) int {
		best, bestD := -1, math.Inf(1)
		for j := range decoded {
			if j == i {
				continue
			}
			var d float64
			for v := range decoded[i] {
				diff := decoded[i][v] - decoded[j][v]
				d += diff * diff
			}
			if d < bestD {
				best, bestD = j, d
			}
		}
		return best
	}
	for _, seed := range []int{0, 2} {
		want := nearest(seed)
		if want != 2-seed {
			t.Fatalf("value-space oracle: nearest(%d) = %d, field construction broken", seed, want)
		}
		got, err := ix.SimilarTo(seed, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0].Tile != want {
			t.Fatalf("SimilarTo(%d,1) = %+v, oracle %d", seed, got, want)
		}
	}

	// Aggregate oracle over the whole field.
	agg := ix.Aggregate()
	if agg.Count != len(data) {
		t.Fatalf("aggregate count %d, want %d", agg.Count, len(data))
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range data {
		w := float64(float32(v))
		lo, hi = math.Min(lo, w), math.Max(hi, w)
	}
	if agg.Min != lo || agg.Max != hi {
		t.Fatalf("aggregate min/max %v/%v, oracle %v/%v", agg.Min, agg.Max, lo, hi)
	}
}

// TestTiledNoIndex checks the opt-out: NoIndex archives carry no
// consolidated entry, their tile streams are format v2, and Index()
// reports the typed sentinel.
func TestTiledNoIndex(t *testing.T) {
	data, dims := indexField(48, 64)
	opts := dpz.LooseOptions()
	opts.NoIndex = true
	arc := compressIndexArchive(t, data, dims, 12, opts)

	ar, err := dpz.OpenArchive(bytes.NewReader(arc), int64(len(arc)))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range ar.Fields() {
		if name == "_dpz_index" {
			t.Fatal("NoIndex archive still has a consolidated index entry")
		}
	}
	stream, err := ar.Stream("tile-000000")
	if err != nil {
		t.Fatal(err)
	}
	info, err := dpz.Stat(stream)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 2 || info.HasIndex {
		t.Fatalf("NoIndex tile stream: version %d, HasIndex %v", info.Version, info.HasIndex)
	}

	tr, err := dpz.OpenTiled(bytes.NewReader(arc), int64(len(arc)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Index(); !errors.Is(err, dpz.ErrNoIndex) {
		t.Fatalf("Index on NoIndex archive = %v, want ErrNoIndex", err)
	}
	// Data access is unaffected.
	if _, _, err := tr.ReadAll(); err != nil {
		t.Fatal(err)
	}
}

// TestTiledIndexFallbackOnDamage corrupts the consolidated index entry:
// queries must still be answered — identically — from the per-tile
// stream indexes, never wrongly from damaged metadata.
func TestTiledIndexFallbackOnDamage(t *testing.T) {
	data, dims := indexField(64, 96)
	arc := compressIndexArchive(t, data, dims, 16, dpz.LooseOptions())

	tr, err := dpz.OpenTiled(bytes.NewReader(arc), int64(len(arc)))
	if err != nil {
		t.Fatal(err)
	}
	intact, err := tr.Index()
	if err != nil {
		t.Fatal(err)
	}

	// Locate the consolidated payload inside the archive bytes and flip
	// one byte; the entry CRC rejects it and Index() must fall back.
	ar, err := dpz.OpenArchive(bytes.NewReader(arc), int64(len(arc)))
	if err != nil {
		t.Fatal(err)
	}
	payload, err := ar.Stream("_dpz_index")
	if err != nil {
		t.Fatal(err)
	}
	off := bytes.Index(arc, payload)
	if off < 0 {
		t.Fatal("consolidated index payload not found in archive bytes")
	}
	bad := append([]byte(nil), arc...)
	bad[off+len(payload)/2] ^= 0x10

	trBad, err := dpz.OpenTiled(bytes.NewReader(bad), int64(len(bad)))
	if err != nil {
		t.Fatal(err)
	}
	fallback, err := trBad.Index()
	if err != nil {
		t.Fatalf("Index with damaged consolidated entry: %v", err)
	}
	if len(fallback.Tiles) != len(intact.Tiles) {
		t.Fatalf("fallback has %d tiles, intact %d", len(fallback.Tiles), len(intact.Tiles))
	}
	for i := range intact.Tiles {
		a, b := intact.Tiles[i], fallback.Tiles[i]
		if a.Count != b.Count || a.Min != b.Min || a.Max != b.Max || a.Mean != b.Mean || a.RMS != b.RMS {
			t.Fatalf("tile %d summary diverged after fallback:\nintact   %+v\nfallback %+v", i, a, b)
		}
		if len(a.RankEnergy) != len(b.RankEnergy) {
			t.Fatalf("tile %d rank energies diverged", i)
		}
		for r := range a.RankEnergy {
			if a.RankEnergy[r] != b.RankEnergy[r] {
				t.Fatalf("tile %d rank %d energy diverged", i, r)
			}
		}
	}

	// Damage a tile stream's own trailing index too: with both copies
	// gone the error must be the typed sentinel, and the data itself
	// must stay fully decodable.
	tileStream, err := ar.Stream("tile-000001")
	if err != nil {
		t.Fatal(err)
	}
	toff := bytes.Index(arc, tileStream)
	if toff < 0 {
		t.Fatal("tile stream not found in archive bytes")
	}
	// Archive entries are CRC-checked on read, so flipping any stream
	// byte makes the whole entry unreadable — exactly the "tile
	// unreadable" fallback failure. Flip the stream's final byte (inside
	// its retrieval index).
	worse := append([]byte(nil), bad...)
	worse[toff+len(tileStream)-1] ^= 0x01
	trWorse, err := dpz.OpenTiled(bytes.NewReader(worse), int64(len(worse)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trWorse.Index(); !errors.Is(err, dpz.ErrNoIndex) {
		t.Fatalf("Index with both copies damaged = %v, want ErrNoIndex", err)
	}
}

// TestTiledIndexAfterRecovery tears the archive tail off mid-way through
// the consolidated index entry (it is written last, so it is the natural
// casualty of a torn write) and recovers: every tile must survive and
// Index() must reassemble from the tile streams.
func TestTiledIndexAfterRecovery(t *testing.T) {
	data, dims := indexField(64, 96)
	arc := compressIndexArchive(t, data, dims, 16, dpz.LooseOptions())

	tr, err := dpz.OpenTiled(bytes.NewReader(arc), int64(len(arc)))
	if err != nil {
		t.Fatal(err)
	}
	intact, err := tr.Index()
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := tr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}

	ar, err := dpz.OpenArchive(bytes.NewReader(arc), int64(len(arc)))
	if err != nil {
		t.Fatal(err)
	}
	payload, err := ar.Stream("_dpz_index")
	if err != nil {
		t.Fatal(err)
	}
	off := bytes.Index(arc, payload)
	if off < 0 {
		t.Fatal("consolidated index payload not found")
	}
	torn := arc[:off+len(payload)/2]

	// Strict open must reject the torn archive; recovery must salvage
	// all tiles and the metadata entry.
	if _, err := dpz.OpenTiled(bytes.NewReader(torn), int64(len(torn))); err == nil {
		t.Fatal("strict OpenTiled accepted a torn archive")
	}
	trRec, err := dpz.OpenTiledOptions(bytes.NewReader(torn), int64(len(torn)), dpz.ArchiveOptions{AllowRecovery: true})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	got, _, err := trRec.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll after recovery: %v", err)
	}
	for i := range full {
		if got[i] != full[i] {
			t.Fatalf("recovered data differs at %d", i)
		}
	}
	rec, err := trRec.Index()
	if err != nil {
		t.Fatalf("Index after recovery: %v", err)
	}
	if len(rec.Tiles) != len(intact.Tiles) {
		t.Fatalf("recovered index has %d tiles, want %d", len(rec.Tiles), len(intact.Tiles))
	}
	for i := range intact.Tiles {
		if rec.Tiles[i].Min != intact.Tiles[i].Min || rec.Tiles[i].Max != intact.Tiles[i].Max {
			t.Fatalf("recovered summary %d diverged", i)
		}
	}
}
