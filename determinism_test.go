// Determinism of the pipelined hot path: every parallel stage must
// produce byte-identical output for every worker count. These tests are
// also the -race coverage of the pipeline paths (run with small tiles so
// the source, workers and sink genuinely overlap).
package dpz_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"testing"

	"dpz"
	"dpz/internal/core"
	"dpz/internal/dataset"
)

var detWorkers = []int{1, 2, 8}

func TestCompressWorkersByteIdentical(t *testing.T) {
	f := dataset.CESM("FLDSC", 128, 256, 17)
	for _, mk := range []struct {
		name string
		opts dpz.Options
	}{
		{"loose", dpz.LooseOptions()},
		{"strict", dpz.StrictOptions()},
	} {
		t.Run(mk.name, func(t *testing.T) {
			var ref []byte
			for _, w := range detWorkers {
				o := mk.opts
				o.Workers = w
				res, err := dpz.CompressFloat64(f.Data, f.Dims, o)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if ref == nil {
					ref = res.Data
					continue
				}
				if !bytes.Equal(res.Data, ref) {
					t.Fatalf("workers=%d stream differs from workers=%d", w, detWorkers[0])
				}
			}
			// Decoding must not depend on the worker count either.
			base, _, err := core.Decompress(ref, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range detWorkers[1:] {
				got, _, err := core.Decompress(ref, w)
				if err != nil {
					t.Fatalf("decompress workers=%d: %v", w, err)
				}
				for i := range got {
					if got[i] != base[i] {
						t.Fatalf("decompress workers=%d: value %d differs", w, i)
					}
				}
			}
		})
	}
}

// The sketch-accelerated PCA path must be as deterministic as the exact
// one: byte-identical streams for every worker count and repeated runs.
// The field is sized so M > 256 and the sketch fast path actually engages.
func TestCompressSketchWorkersByteIdentical(t *testing.T) {
	f := dataset.CESM("PHIS", 300, 600, 29)
	var ref []byte
	var refDecision string
	for _, w := range detWorkers {
		for rep := 0; rep < 2; rep++ {
			o := dpz.LooseOptions()
			o.Workers = w
			o.SketchPCA = true
			res, err := dpz.CompressFloat64(f.Data, f.Dims, o)
			if err != nil {
				t.Fatalf("workers=%d rep=%d: %v", w, rep, err)
			}
			if res.Stats.SketchDecision == "" {
				t.Fatalf("workers=%d rep=%d: SketchPCA set but no sketch decision reported", w, rep)
			}
			if ref == nil {
				ref, refDecision = res.Data, res.Stats.SketchDecision
				continue
			}
			if res.Stats.SketchDecision != refDecision {
				t.Fatalf("workers=%d rep=%d: decision %q vs %q", w, rep, res.Stats.SketchDecision, refDecision)
			}
			if !bytes.Equal(res.Data, ref) {
				t.Fatalf("workers=%d rep=%d: sketch stream differs from workers=%d", w, rep, detWorkers[0])
			}
		}
	}
	// The stream must decode like any other DPZ stream.
	if _, _, err := core.Decompress(ref, 2); err != nil {
		t.Fatal(err)
	}
}

// tiledArchive compresses f as a tiled archive with the given geometry.
func tiledArchive(t *testing.T, f *dataset.Field, tileRows, workers int) []byte {
	t.Helper()
	raw := make([]byte, 4*f.Len())
	for i, v := range f.Data {
		binary.LittleEndian.PutUint32(raw[4*i:], math.Float32bits(float32(v)))
	}
	o := dpz.LooseOptions()
	o.Workers = workers
	var buf bytes.Buffer
	if _, err := dpz.CompressTiled(bytes.NewReader(raw), f.Dims, tileRows, o, &buf); err != nil {
		t.Fatalf("tileRows=%d workers=%d: %v", tileRows, workers, err)
	}
	return buf.Bytes()
}

func TestTiledWorkersByteIdentical(t *testing.T) {
	f := dataset.CESM("CLDHGH", 64, 96, 5)
	// tileRows=1 gives 64 single-row tiles: the pipeline's source, worker
	// pool and ordered sink all run concurrently under -race.
	for _, tileRows := range []int{1, 5, 64} {
		t.Run(fmt.Sprintf("tileRows=%d", tileRows), func(t *testing.T) {
			ref := tiledArchive(t, f, tileRows, 1)
			for _, w := range []int{4, 8} {
				if got := tiledArchive(t, f, tileRows, w); !bytes.Equal(got, ref) {
					t.Fatalf("workers=%d archive differs from serial", w)
				}
			}
			tr, err := dpz.OpenTiled(bytes.NewReader(ref), int64(len(ref)))
			if err != nil {
				t.Fatal(err)
			}
			serial, dims, err := tr.ReadAllParallel(1)
			if err != nil {
				t.Fatal(err)
			}
			if len(serial) != f.Len() || dims[0] != f.Dims[0] {
				t.Fatalf("ReadAll: %d values, dims %v", len(serial), dims)
			}
			par, _, err := tr.ReadAllParallel(8)
			if err != nil {
				t.Fatal(err)
			}
			for i := range par {
				if par[i] != serial[i] {
					t.Fatalf("parallel read differs at %d", i)
				}
			}
		})
	}
}

func TestCompressBatchMatchesSequential(t *testing.T) {
	mkFields := func() []dpz.ArchiveField {
		fields := make([]dpz.ArchiveField, 5)
		for i := range fields {
			f := dataset.CESM(fmt.Sprintf("F%d", i), 40, 60, int64(100+i))
			fields[i] = dpz.ArchiveField{Name: f.Name, Data: f.Data, Dims: f.Dims}
		}
		return fields
	}
	fields := mkFields()
	o := dpz.LooseOptions()

	// Reference: one-by-one appends with a serial writer.
	var seq bytes.Buffer
	aw, err := dpz.NewArchiveWriter(&seq)
	if err != nil {
		t.Fatal(err)
	}
	o.Workers = 1
	var seqStats []dpz.Stats
	for _, f := range fields {
		s, err := aw.CompressFloat64(f.Name, f.Data, f.Dims, o)
		if err != nil {
			t.Fatal(err)
		}
		seqStats = append(seqStats, *s)
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}

	for _, w := range []int{1, 4, 8} {
		var batch bytes.Buffer
		bw, err := dpz.NewArchiveWriter(&batch)
		if err != nil {
			t.Fatal(err)
		}
		o.Workers = w
		stats, err := bw.CompressBatch(fields, o)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if err := bw.Close(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(batch.Bytes(), seq.Bytes()) {
			t.Fatalf("workers=%d batch archive differs from sequential", w)
		}
		if len(stats) != len(seqStats) {
			t.Fatalf("workers=%d: %d stats", w, len(stats))
		}
		for i := range stats {
			if stats[i].CompressedBytes != seqStats[i].CompressedBytes {
				t.Fatalf("workers=%d field %d: stats mismatch", w, i)
			}
		}
	}
}

func TestCompressBatchErrors(t *testing.T) {
	var buf bytes.Buffer
	aw, err := dpz.NewArchiveWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if stats, err := aw.CompressBatch(nil, dpz.LooseOptions()); err != nil || stats != nil {
		t.Fatalf("empty batch: %v, %v", stats, err)
	}
	bad := []dpz.ArchiveField{
		{Name: "ok", Data: make([]float64, 600), Dims: []int{20, 30}},
		{Name: "bad", Data: make([]float64, 7), Dims: []int{2, 3}},
	}
	if _, err := aw.CompressBatch(bad, dpz.LooseOptions()); err == nil {
		t.Fatal("mismatched dims accepted")
	}
}
