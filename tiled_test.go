package dpz_test

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"dpz"
	"dpz/internal/dataset"
)

// rawF32 serializes a field the way SDRBench files are laid out.
func rawF32(f *dataset.Field) []byte {
	out := make([]byte, 4*len(f.Data))
	for i, v := range f.Data {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(float32(v)))
	}
	return out
}

func TestTiledRoundTrip(t *testing.T) {
	f := dataset.CESM("FLDSC", 100, 180, 111)
	opts := dpz.StrictOptions()
	opts.TVE = dpz.Nines(4)

	var arc bytes.Buffer
	statsOut, err := dpz.CompressTiled(bytes.NewReader(rawF32(f)), f.Dims, 32, opts, &arc)
	if err != nil {
		t.Fatal(err)
	}
	// 100 rows in 32-row slabs -> 4 tiles (32+32+32+4).
	if len(statsOut) != 4 {
		t.Fatalf("%d tiles, want 4", len(statsOut))
	}

	tr, err := dpz.OpenTiled(bytes.NewReader(arc.Bytes()), int64(arc.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Tiles() != 4 || tr.TileRows() != 32 {
		t.Fatalf("meta: %d tiles, %d rows", tr.Tiles(), tr.TileRows())
	}
	got := tr.Dims()
	if got[0] != 100 || got[1] != 180 {
		t.Fatalf("dims %v", got)
	}

	// Single-slab access.
	slab, slabDims, err := tr.Tile(3)
	if err != nil {
		t.Fatal(err)
	}
	if slabDims[0] != 4 || slabDims[1] != 180 {
		t.Fatalf("last slab dims %v", slabDims)
	}
	if len(slab) != 4*180 {
		t.Fatalf("last slab has %d values", len(slab))
	}

	// Full streamed reconstruction: quality comparable to whole-field
	// compression at the same setting.
	all, dims, err := tr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if dims[0] != 100 || len(all) != f.Len() {
		t.Fatalf("ReadAll shape %v / %d", dims, len(all))
	}
	if psnr := dpz.PSNR(f.Data, all); psnr < 35 {
		t.Fatalf("tiled PSNR %.1f", psnr)
	}

	// Bad tile index.
	if _, _, err := tr.Tile(4); err == nil {
		t.Fatal("expected out-of-range tile error")
	}
	if _, _, err := tr.Tile(-1); err == nil {
		t.Fatal("expected negative tile error")
	}
}

func TestTiledValidation(t *testing.T) {
	f := dataset.CESM("PHIS", 40, 80, 112)
	var arc bytes.Buffer
	if _, err := dpz.CompressTiled(bytes.NewReader(rawF32(f)), f.Dims, 0, dpz.StrictOptions(), &arc); err == nil {
		t.Fatal("expected tileRows validation error")
	}
	if _, err := dpz.CompressTiled(bytes.NewReader(rawF32(f)), []int{0, 80}, 8, dpz.StrictOptions(), &arc); err == nil {
		t.Fatal("expected dims validation error")
	}
	// Truncated input stream.
	short := rawF32(f)[:100]
	if _, err := dpz.CompressTiled(bytes.NewReader(short), f.Dims, 8, dpz.StrictOptions(), &arc); err == nil {
		t.Fatal("expected short-read error")
	}
	// A plain (non-tiled) archive must be rejected by OpenTiled.
	var plain bytes.Buffer
	aw, _ := dpz.NewArchiveWriter(&plain)
	res, _ := dpz.CompressFloat64(f.Data, f.Dims, dpz.LooseOptions())
	aw.Append("x", res.Data)
	aw.Close()
	if _, err := dpz.OpenTiled(bytes.NewReader(plain.Bytes()), int64(plain.Len())); err == nil {
		t.Fatal("expected non-tiled rejection")
	}
}
